//! The conflict-analysis microbenchmark behind `bench_conflict`.
//!
//! One seeded window of changes is rendered against a materialized
//! monorepo and every change's affected set is computed once (untimed
//! setup). The pairwise Step-2 relation — "do the affected target names
//! intersect?" (paper §5.2, Equation 6) — is then evaluated three ways
//! over the same inputs:
//!
//! * **serial** — the pre-index baseline: each pair freshly materializes
//!   both sides' `HashSet<TargetName>` (string clones and all) and
//!   probes for overlap. The *full* uncached pipeline additionally
//!   re-applies both patches and re-analyzes both snapshots per pair,
//!   so every speedup reported here is a lower bound.
//! * **indexed** — intern the names, build one [`BitSet`] per change in
//!   a cold [`ConflictIndex`] (construction is inside the timed region),
//!   then [`ConflictIndex::matrix_serial`]: word-wise ANDs.
//! * **indexed+parallel** — same cold-index build, then
//!   [`ConflictIndex::matrix_parallel`] across scoped worker threads.
//!
//! All three modes must produce byte-identical [`ConflictMatrix`]
//! serializations — the determinism gate CI enforces via `--smoke`.
//! Unlike `BENCH_e2e.json`, this document reports wall time, so it is
//! *not* byte-identical across runs; the matrices are.

use sq_build::{AffectedSet, BitSet, Interner, SnapshotAnalysis, TargetName};
use sq_core::index::{ConflictIndex, ConflictMatrix, TrunkHash};
use sq_obs::JsonWriter;
use sq_workload::repo_model::MaterializedRepo;
use sq_workload::{ChangeId, WorkloadBuilder, WorkloadParams};
use std::collections::HashSet;
use std::time::Instant;

/// Parameters of one conflict-benchmark run.
#[derive(Debug, Clone)]
pub struct ConflictParams {
    /// Master seed for the workload and repository.
    pub seed: u64,
    /// Logical parts (= packages) in the materialized repo.
    pub n_parts: usize,
    /// Window sizes to measure (the workload holds `max(windows)`
    /// changes; each window is a prefix).
    pub windows: Vec<usize>,
    /// Worker threads for the parallel mode.
    pub threads: usize,
    /// Repetitions per mode; the minimum wall time is reported.
    pub reps: usize,
}

impl ConflictParams {
    /// The recorded configuration (what `bench_conflict` runs by default
    /// and what `BENCH_conflict.json` at the repo root reports).
    pub fn standard() -> Self {
        ConflictParams {
            seed: crate::bench_seed(),
            n_parts: 128,
            windows: vec![64, 256, 1024],
            threads: 8,
            reps: 3,
        }
    }

    /// A small configuration for CI smoke runs. Keeps the 256-change
    /// window: that is where the smoke gate compares parallel against
    /// serial wall time.
    pub fn smoke() -> Self {
        ConflictParams {
            seed: crate::bench_seed(),
            n_parts: 32,
            windows: vec![64, 256],
            threads: 8,
            reps: 2,
        }
    }
}

/// Measured results for one window size.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Window size (number of changes).
    pub n: usize,
    /// Pairs evaluated per mode: `n (n - 1) / 2`.
    pub pairs: u64,
    /// Conflicting pairs in the (shared) matrix.
    pub conflicts: u64,
    /// Best-of-reps wall time of the per-pair set-materialization
    /// baseline, in nanoseconds.
    pub serial_nanos: u64,
    /// Best-of-reps wall time of cold-index build + serial matrix.
    pub indexed_nanos: u64,
    /// Best-of-reps wall time of cold-index build + parallel matrix.
    pub parallel_nanos: u64,
    /// Whether all three modes serialized to identical matrix bytes.
    pub identical: bool,
}

impl WindowResult {
    /// Serial wall over indexed wall.
    pub fn speedup_indexed(&self) -> f64 {
        self.serial_nanos as f64 / self.indexed_nanos.max(1) as f64
    }

    /// Serial wall over indexed+parallel wall.
    pub fn speedup_parallel(&self) -> f64 {
        self.serial_nanos as f64 / self.parallel_nanos.max(1) as f64
    }
}

/// A full benchmark report: parameters plus one result per window.
#[derive(Debug, Clone)]
pub struct ConflictReport {
    /// The parameters the run used.
    pub params: ConflictParams,
    /// One entry per requested window, in input order.
    pub windows: Vec<WindowResult>,
}

impl ConflictReport {
    /// Render the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "sq-bench-conflict/v1");
        w.key("params");
        w.begin_object();
        w.field_u64("seed", self.params.seed);
        w.field_u64("n_parts", self.params.n_parts as u64);
        w.field_u64("threads", self.params.threads as u64);
        w.field_u64("reps", self.params.reps as u64);
        w.end_object();
        w.key("windows");
        w.begin_array();
        for r in &self.windows {
            w.begin_object();
            w.field_u64("n", r.n as u64);
            w.field_u64("pairs", r.pairs);
            w.field_u64("conflicts", r.conflicts);
            w.field_f64("serial_ms", r.serial_nanos as f64 / 1e6);
            w.field_f64("indexed_ms", r.indexed_nanos as f64 / 1e6);
            w.field_f64("indexed_parallel_ms", r.parallel_nanos as f64 / 1e6);
            w.field_f64("speedup_indexed", r.speedup_indexed());
            w.field_f64("speedup_indexed_parallel", r.speedup_parallel());
            w.key("matrices_identical");
            w.value_bool(r.identical);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// The CI perf-regression gate: every window's matrices must be
    /// byte-identical across all three modes, and on the gate window
    /// (256 changes if measured, else the largest) the indexed+parallel
    /// wall time must not exceed the serial baseline.
    pub fn smoke_gate(&self) -> Result<(), String> {
        for r in &self.windows {
            if !r.identical {
                return Err(format!(
                    "window {}: conflict matrices diverged across modes",
                    r.n
                ));
            }
        }
        let gate = self
            .windows
            .iter()
            .find(|r| r.n == 256)
            .or_else(|| self.windows.iter().max_by_key(|r| r.n))
            .ok_or("no windows measured")?;
        if gate.parallel_nanos > gate.serial_nanos {
            return Err(format!(
                "window {}: indexed+parallel ({} ns) slower than serial ({} ns)",
                gate.n, gate.parallel_nanos, gate.serial_nanos
            ));
        }
        Ok(())
    }
}

/// Run the benchmark: untimed setup (materialize the repo, compute each
/// change's affected set once), then time the three modes per window.
pub fn run_conflict(params: &ConflictParams) -> ConflictReport {
    let n_changes = params.windows.iter().copied().max().unwrap_or(0);
    let mut wl_params = WorkloadParams::ios();
    wl_params.n_parts = params.n_parts;
    let repo = MaterializedRepo::generate(&wl_params).expect("valid repo params");
    let workload = WorkloadBuilder::new(wl_params)
        .seed(params.seed)
        .n_changes(n_changes)
        .build()
        .expect("valid workload params");

    // Untimed setup: one affected set per change against the pristine
    // mainline — exactly what the index memoizes in production.
    let mut store = repo.repo.store().clone();
    let base_tree = repo.repo.head_tree().expect("repo has a head");
    let base = SnapshotAnalysis::analyze(&base_tree, &store).expect("base analyzes");
    let mut ids: Vec<ChangeId> = Vec::with_capacity(n_changes);
    let mut affected: Vec<AffectedSet> = Vec::with_capacity(n_changes);
    for c in &workload.changes {
        let tree = repo
            .patch_for(c)
            .apply(&base_tree, &mut store)
            .expect("generated patches apply");
        let analysis = SnapshotAnalysis::analyze(&tree, &store).expect("snapshot analyzes");
        ids.push(c.id);
        affected.push(AffectedSet::between(&base, &analysis));
    }

    let windows = params
        .windows
        .iter()
        .map(|&n| run_window(n, &ids[..n], &affected[..n], params))
        .collect();
    ConflictReport {
        params: params.clone(),
        windows,
    }
}

fn run_window(
    n: usize,
    ids: &[ChangeId],
    affected: &[AffectedSet],
    params: &ConflictParams,
) -> WindowResult {
    let mut serial_nanos = u64::MAX;
    let mut indexed_nanos = u64::MAX;
    let mut parallel_nanos = u64::MAX;
    let mut serial_m = None;
    let mut indexed_m = None;
    let mut parallel_m = None;
    for _ in 0..params.reps.max(1) {
        let (t, m) = time(|| serial_matrix(affected));
        serial_nanos = serial_nanos.min(t);
        serial_m = Some(m);
        let (t, m) = time(|| indexed_matrix(ids, affected, None));
        indexed_nanos = indexed_nanos.min(t);
        indexed_m = Some(m);
        let (t, m) = time(|| indexed_matrix(ids, affected, Some(params.threads)));
        parallel_nanos = parallel_nanos.min(t);
        parallel_m = Some(m);
    }
    let serial_m = serial_m.expect("at least one rep");
    let identical = serial_m.to_bytes() == indexed_m.expect("rep").to_bytes()
        && serial_m.to_bytes() == parallel_m.expect("rep").to_bytes();
    WindowResult {
        n,
        pairs: (n * n.saturating_sub(1) / 2) as u64,
        conflicts: serial_m.conflict_count(),
        serial_nanos,
        indexed_nanos,
        parallel_nanos,
        identical,
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let start = Instant::now();
    let out = f();
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (nanos, out)
}

/// The pre-index baseline: every pair materializes both name sets from
/// scratch (owned strings, fresh hash tables) before probing overlap.
fn serial_matrix(affected: &[AffectedSet]) -> ConflictMatrix {
    let n = affected.len();
    let mut m = ConflictMatrix::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let a: HashSet<TargetName> = affected[i].iter().map(|(t, _)| t.clone()).collect();
            let b: HashSet<TargetName> = affected[j].iter().map(|(t, _)| t.clone()).collect();
            if !a.is_disjoint(&b) {
                m.set(i, j);
            }
        }
    }
    m
}

/// Cold-index build (interning included in the timed region) followed by
/// the serial or parallel whole-window matrix.
fn indexed_matrix(
    ids: &[ChangeId],
    affected: &[AffectedSet],
    threads: Option<usize>,
) -> ConflictMatrix {
    let mut interner: Interner<TargetName> = Interner::new();
    let mut index = ConflictIndex::new(TrunkHash(1));
    for (id, set) in ids.iter().zip(affected) {
        let bits: BitSet = set.iter().map(|(t, _)| interner.intern(t)).collect();
        index.ensure_with(*id, || bits);
    }
    match threads {
        None => index.matrix_serial(ids),
        Some(t) => index.matrix_parallel(ids, t),
    }
}

/// Required keys of each entry under `"windows"`.
const WINDOW_KEYS: &[&str] = &[
    "n",
    "pairs",
    "conflicts",
    "serial_ms",
    "indexed_ms",
    "indexed_parallel_ms",
    "speedup_indexed",
    "speedup_indexed_parallel",
    "matrices_identical",
];

/// Validate a benchmark document: it must parse as JSON, carry the
/// schema and parameters, and every window entry must be complete with
/// `matrices_identical` true. Returns the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    use serde::__private::Value;
    let value: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Map(entries) = value else {
        return Err("top level is not an object".to_string());
    };
    let field = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match field("schema") {
        Some(Value::Str(s)) if s == "sq-bench-conflict/v1" => {}
        _ => return Err("missing or unexpected schema".to_string()),
    }
    let Some(Value::Map(params)) = field("params") else {
        return Err("\"params\" is not an object".to_string());
    };
    for key in ["seed", "n_parts", "threads", "reps"] {
        if !params.iter().any(|(k, _)| k == key) {
            return Err(format!("missing key params.{key}"));
        }
    }
    let Some(Value::Seq(windows)) = field("windows") else {
        return Err("\"windows\" is not an array".to_string());
    };
    if windows.is_empty() {
        return Err("no windows measured".to_string());
    }
    for (i, w) in windows.iter().enumerate() {
        let Value::Map(m) = w else {
            return Err(format!("windows[{i}] is not an object"));
        };
        for key in WINDOW_KEYS {
            if !m.iter().any(|(k, _)| k == key) {
                return Err(format!("missing key windows[{i}].{key}"));
            }
        }
        match m.iter().find(|(k, _)| k == "matrices_identical") {
            Some((_, Value::Bool(true))) => {}
            _ => return Err(format!("windows[{i}]: matrices diverged across modes")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_flags_malformed_documents() {
        assert!(validate("nope").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        assert!(validate(r#"{"schema":"sq-bench-conflict/v1"}"#)
            .unwrap_err()
            .contains("params"));
        let no_windows = r#"{"schema":"sq-bench-conflict/v1",
            "params":{"seed":1,"n_parts":8,"threads":2,"reps":1},
            "windows":[]}"#;
        assert!(validate(no_windows).unwrap_err().contains("no windows"));
        let diverged = r#"{"schema":"sq-bench-conflict/v1",
            "params":{"seed":1,"n_parts":8,"threads":2,"reps":1},
            "windows":[{"n":4,"pairs":6,"conflicts":1,"serial_ms":1.0,
                        "indexed_ms":0.5,"indexed_parallel_ms":0.5,
                        "speedup_indexed":2.0,"speedup_indexed_parallel":2.0,
                        "matrices_identical":false}]}"#;
        assert!(validate(diverged).unwrap_err().contains("diverged"));
    }

    #[test]
    fn smoke_gate_prefers_the_256_window() {
        let win = |n: usize, serial: u64, parallel: u64| WindowResult {
            n,
            pairs: (n * (n - 1) / 2) as u64,
            conflicts: 0,
            serial_nanos: serial,
            indexed_nanos: parallel,
            parallel_nanos: parallel,
            identical: true,
        };
        let report = |windows: Vec<WindowResult>| ConflictReport {
            params: ConflictParams::smoke(),
            windows,
        };
        // Tiny windows may legitimately lose to thread-spawn overhead;
        // the gate only reads the 256 window.
        let r = report(vec![win(8, 10, 500), win(256, 1_000, 400)]);
        assert!(r.smoke_gate().is_ok());
        let r = report(vec![win(256, 400, 1_000)]);
        assert!(r.smoke_gate().unwrap_err().contains("slower"));
        let mut bad = win(256, 1_000, 400);
        bad.identical = false;
        assert!(report(vec![bad])
            .smoke_gate()
            .unwrap_err()
            .contains("diverged"));
        // Without a 256 window the largest one gates.
        let r = report(vec![win(8, 10, 500), win(64, 2_000, 900)]);
        assert!(r.smoke_gate().is_ok());
    }
}
