//! The machine-readable end-to-end benchmark behind `bench_e2e`.
//!
//! One seeded run of the whole system — workload synthesis, predictor
//! training, SubmitQueue planning under an infra-fault model, plus a
//! real threaded-executor pass for artifact-cache behaviour — distilled
//! into a single JSON document (`BENCH_e2e.json`). The document is a
//! pure function of [`E2eParams`]: timestamps are simulated, map keys
//! are sorted, floats use shortest round-trip formatting, so two
//! same-seed runs emit byte-identical files and a diff between two
//! commits is a genuine performance diff.

use sq_core::planner::{run_simulation_observed, PlannerConfig, SimFaults};
use sq_core::predict::LearnedPredictor;
use sq_core::strategy::Strategy;
use sq_exec::{ArtifactCache, RealExecutor, StepOutcome};
use sq_obs::{JsonWriter, Observer};
use sq_workload::{WorkloadBuilder, WorkloadParams};
use std::collections::HashSet;
use std::str::FromStr;

/// Parameters of one end-to-end benchmark run.
#[derive(Debug, Clone)]
pub struct E2eParams {
    /// Master seed (workload, training history, fault model).
    pub seed: u64,
    /// Number of changes in the replayed workload.
    pub n_changes: usize,
    /// Ingestion rate in changes/hour.
    pub rate: f64,
    /// Worker fleet size.
    pub workers: usize,
    /// Per-attempt infra-fault probability in `[0, 1]`.
    pub fault_rate: f64,
    /// Training-history size for the SubmitQueue predictor.
    pub history_changes: usize,
}

impl E2eParams {
    /// The recorded benchmark configuration (what `bench_e2e` runs by
    /// default and what `BENCH_e2e.json` at the repo root reports).
    pub fn standard() -> Self {
        E2eParams {
            seed: crate::bench_seed(),
            n_changes: 400,
            rate: 250.0,
            workers: 150,
            fault_rate: 0.05,
            history_changes: 4_000,
        }
    }

    /// A small configuration for CI smoke runs (seconds, not minutes).
    pub fn smoke() -> Self {
        E2eParams {
            seed: crate::bench_seed(),
            n_changes: 60,
            rate: 200.0,
            workers: 40,
            fault_rate: 0.1,
            history_changes: 800,
        }
    }
}

/// Run the end-to-end benchmark and return the JSON document.
pub fn run_e2e(params: &E2eParams) -> String {
    // Phase 1: the full planning pipeline under observation — train the
    // predictor on a disjoint history, replay the workload through the
    // SubmitQueue strategy with infra faults enabled.
    let workload = WorkloadBuilder::new(WorkloadParams::ios().with_rate(params.rate))
        .seed(params.seed)
        .n_changes(params.n_changes)
        .build()
        .expect("valid workload params");
    let history = WorkloadBuilder::new(WorkloadParams::ios())
        .seed(params.seed ^ 0xA11CE)
        .n_changes(params.history_changes)
        .build()
        .expect("valid history params");
    let (predictor, _) = LearnedPredictor::train(&history, params.seed);
    let strategy = Strategy::submit_queue_with(predictor);
    let config = PlannerConfig {
        workers: params.workers,
        faults: Some(SimFaults::at_rate(params.fault_rate, params.seed)),
        ..PlannerConfig::default()
    };
    let mut obs = Observer::new();
    let result = run_simulation_observed(&workload, &strategy, &config, &mut obs);

    // Phase 2: the real executor over a small dependency chain, run
    // twice against one artifact cache: the first pass is all misses,
    // the second all hits. Only *counts* go into the document — wall
    // clock never does.
    let (exec_first, exec_second, cache_stats) = executor_cache_pass();

    // Compose the document.
    let changes = result.records.len().max(1) as f64;
    let (p50, p95, p99) = result.turnaround_p50_p95_p99();
    let needed = obs.metrics.counter("planner.builds_needed");
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "sq-bench-e2e/v1");
    w.key("params");
    w.begin_object();
    w.field_u64("seed", params.seed);
    w.field_u64("n_changes", params.n_changes as u64);
    w.field_f64("rate_per_hour", params.rate);
    w.field_u64("workers", params.workers as u64);
    w.field_f64("fault_rate", params.fault_rate);
    w.field_u64("history_changes", params.history_changes as u64);
    w.field_str("strategy", result.strategy.name());
    w.end_object();
    w.field_f64("throughput_changes_per_hour", result.throughput_per_hour());
    w.field_f64(
        "sustained_throughput_per_hour",
        result.sustained_throughput_per_hour(),
    );
    w.key("turnaround_mins");
    w.begin_object();
    w.field_f64("mean", result.mean_turnaround_mins());
    w.field_f64("p50", p50);
    w.field_f64("p95", p95);
    w.field_f64("p99", p99);
    w.end_object();
    w.field_f64("builds_per_change", result.builds_started as f64 / changes);
    w.field_f64("worker_utilization", result.utilization);
    w.key("builds");
    w.begin_object();
    w.field_u64("started", result.builds_started);
    w.field_u64("aborted", result.builds_aborted);
    w.field_u64("needed", needed);
    w.field_u64("wasted", result.builds_started.saturating_sub(needed));
    w.end_object();
    w.field_u64("commits", result.committed() as u64);
    w.field_u64("rejects", result.rejected() as u64);
    w.key("infra");
    w.begin_object();
    w.field_u64("retries", result.infra_retries);
    w.field_f64("backoff_mins", result.infra_backoff.as_mins_f64());
    w.field_u64("quarantined", result.quarantined.len() as u64);
    w.end_object();
    w.key("cache");
    w.begin_object();
    w.field_u64("hits", cache_stats.hits);
    w.field_u64("misses", cache_stats.misses);
    w.field_f64("hit_rate", cache_stats.hit_rate());
    w.field_u64("entries", cache_stats.entries as u64);
    w.field_u64("first_pass_executed", exec_first as u64);
    w.field_u64("second_pass_cache_hits", exec_second as u64);
    w.end_object();
    w.key("metrics");
    obs.metrics.write_json(&mut w);
    w.end_object();
    w.finish()
}

/// Drive the threaded executor over a diamond-shaped build graph twice
/// against one artifact cache. Returns (steps executed on the first
/// pass, cache hits on the second pass, final cache statistics) — all
/// deterministic counts regardless of thread interleaving.
fn executor_cache_pass() -> (usize, usize, sq_exec::CacheStats) {
    use sq_build::{BuildGraph, RuleKind, Target, TargetHashes, TargetName};
    use sq_vcs::{ObjectStore, RepoPath, Tree};
    let name = |s: &str| TargetName::from_str(s).expect("valid target name");
    let path = |s: &str| RepoPath::new(s).expect("valid repo path");
    let mut store = ObjectStore::new();
    let mut tree = Tree::new();
    for (p, content) in [
        ("base/s.rs", "base"),
        ("left/s.rs", "left"),
        ("right/s.rs", "right"),
        ("app/s.rs", "app"),
    ] {
        let id = store.put(content.as_bytes().to_vec());
        tree.insert(path(p), id);
    }
    let graph = BuildGraph::from_targets([
        Target::new(
            name("//base:base"),
            RuleKind::Library,
            vec![path("base/s.rs")],
            vec![],
        ),
        Target::new(
            name("//left:left"),
            RuleKind::Library,
            vec![path("left/s.rs")],
            vec![name("//base:base")],
        ),
        Target::new(
            name("//right:right"),
            RuleKind::Library,
            vec![path("right/s.rs")],
            vec![name("//base:base")],
        ),
        Target::new(
            name("//app:app"),
            RuleKind::Test,
            vec![path("app/s.rs")],
            vec![name("//left:left"), name("//right:right")],
        ),
    ])
    .expect("acyclic graph");
    let hashes = TargetHashes::compute(&graph, &tree, &store).expect("hashable");
    let targets: HashSet<TargetName> = ["//base:base", "//left:left", "//right:right", "//app:app"]
        .iter()
        .map(|s| name(s))
        .collect();
    let cache = parking_lot::Mutex::new(ArtifactCache::new());
    let executor = RealExecutor::new(4);
    let first = executor.execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
    let second = executor.execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
    assert!(first.is_success() && second.is_success());
    let stats = cache.lock().stats();
    (first.executed.len(), second.cache_hits, stats)
}

/// Required top-level keys of the benchmark document.
const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "params",
    "throughput_changes_per_hour",
    "sustained_throughput_per_hour",
    "turnaround_mins",
    "builds_per_change",
    "worker_utilization",
    "builds",
    "infra",
    "cache",
    "metrics",
];

/// Validate a benchmark document: it must parse as JSON, carry every
/// required top-level key, the turnaround percentiles, and the cache
/// hit rate. Returns a description of the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    use serde::__private::Value;
    let value: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Map(entries) = value else {
        return Err("top level is not an object".to_string());
    };
    let has = |entries: &[(String, Value)], key: &str| entries.iter().any(|(k, _)| k == key);
    for key in REQUIRED_KEYS {
        if !has(&entries, key) {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let nested = |outer: &str, inner: &[&str]| -> Result<(), String> {
        let Some((_, Value::Map(m))) = entries.iter().find(|(k, _)| k == outer) else {
            return Err(format!("{outer:?} is not an object"));
        };
        for key in inner {
            if !has(m, key) {
                return Err(format!("missing key {outer}.{key}"));
            }
        }
        Ok(())
    };
    nested("turnaround_mins", &["mean", "p50", "p95", "p99"])?;
    nested("cache", &["hits", "misses", "hit_rate"])?;
    nested("builds", &["started", "aborted", "needed", "wasted"])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_cache_pass_is_deterministic() {
        let (first, second, stats) = executor_cache_pass();
        // base/left/right compile + app compile/run-tests = 5 steps.
        assert_eq!(first, 5);
        assert_eq!(second, 5);
        assert_eq!((stats.hits, stats.misses), (5, 5));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validate_flags_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("[1,2]").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        assert!(validate(r#"{"schema":"x"}"#)
            .unwrap_err()
            .contains("params"));
    }
}
