//! The lean-speculation ablation matrix behind `bench_lean`.
//!
//! One seeded workload replayed through five [`LeanConfig`] cells —
//! baseline (decision-identical to plain SubmitQueue), each lean
//! optimization alone, and all three together — under the same planner
//! configuration as `bench_e2e`, so the baseline cell reproduces the
//! committed `BENCH_e2e.json` build counts. Every cell is audited:
//! always-green must hold and wrongful rejections must be zero (a wrong
//! skip or bypass may only cost latency, never a rejection). Like the
//! other committed benchmark documents, the JSON is a pure function of
//! [`LeanBenchParams`] — simulated time only, sorted metric keys,
//! shortest-round-trip floats — so same-seed reruns are byte-identical.

use sq_core::audit::{audit_green, count_wrongful_rejections};
use sq_core::planner::{run_simulation_observed, PlannerConfig, SimFaults, SimResult};
use sq_core::predict::LearnedPredictor;
use sq_core::strategy::Strategy;
use sq_core::{LeanConfig, LeanReport, SKIP_MISS_BUDGET};
use sq_obs::{JsonWriter, Observer};
use sq_workload::{Workload, WorkloadBuilder, WorkloadParams};

/// Parameters of one ablation-matrix run. Mirrors `E2eParams` so the
/// baseline cell is directly comparable to `BENCH_e2e.json`.
#[derive(Debug, Clone)]
pub struct LeanBenchParams {
    /// Master seed (workload, training history, fault model).
    pub seed: u64,
    /// Number of changes in the replayed workload.
    pub n_changes: usize,
    /// Ingestion rate in changes/hour.
    pub rate: f64,
    /// Worker fleet size.
    pub workers: usize,
    /// Per-attempt infra-fault probability in `[0, 1]`.
    pub fault_rate: f64,
    /// Training-history size for the predictor and calibration.
    pub history_changes: usize,
}

impl LeanBenchParams {
    /// The recorded configuration (what `BENCH_lean.json` at the repo
    /// root reports) — identical to `E2eParams::standard`.
    pub fn standard() -> Self {
        LeanBenchParams {
            seed: crate::bench_seed(),
            n_changes: 400,
            rate: 250.0,
            workers: 150,
            fault_rate: 0.05,
            history_changes: 4_000,
        }
    }

    /// A small configuration for CI smoke runs.
    pub fn smoke() -> Self {
        LeanBenchParams {
            seed: crate::bench_seed(),
            n_changes: 60,
            rate: 200.0,
            workers: 40,
            fault_rate: 0.1,
            history_changes: 800,
        }
    }
}

/// One audited ablation cell.
#[derive(Debug)]
pub struct LeanCell {
    /// Which lean flags were active.
    pub config: LeanConfig,
    /// Stable cell label ("baseline", "skip", …, "skip+prioritize+bypass").
    pub label: String,
    /// The finished simulation.
    pub result: SimResult,
    /// Gating builds actually required (`planner.builds_needed`).
    pub needed: u64,
    /// Always-green audit verdict.
    pub green: Result<(), String>,
    /// Wrongful-rejection count (must be zero in every cell).
    pub wrongful: usize,
}

impl LeanCell {
    /// Builds started beyond the needed gating builds.
    pub fn wasted(&self) -> u64 {
        self.result.builds_started.saturating_sub(self.needed)
    }

    /// The per-run lean accounting (present for every lean strategy).
    pub fn lean_report(&self) -> LeanReport {
        self.result.lean.unwrap_or_default()
    }
}

/// A finished ablation matrix.
#[derive(Debug)]
pub struct LeanMatrix {
    /// The parameters that produced it.
    pub params: LeanBenchParams,
    /// The calibrated skip threshold shared by the skip-enabled cells.
    pub skip_threshold: f64,
    /// One cell per ablation row, baseline first.
    pub cells: Vec<LeanCell>,
}

impl LeanMatrix {
    /// The baseline cell (always first).
    pub fn baseline(&self) -> &LeanCell {
        &self.cells[0]
    }

    /// The all-on cell (always last).
    pub fn all_on(&self) -> &LeanCell {
        self.cells.last().expect("matrix has cells")
    }
}

/// The ablation rows, baseline first and all-on last.
fn ablation_cells(threshold: f64) -> Vec<LeanConfig> {
    vec![
        LeanConfig::baseline(),
        LeanConfig::lean(threshold),
        LeanConfig::prioritized(),
        LeanConfig::bypass_only(),
        LeanConfig::all_on(threshold),
    ]
}

/// Run the full ablation matrix: train and calibrate once, then replay
/// the same workload through every cell.
pub fn run_matrix(params: &LeanBenchParams) -> LeanMatrix {
    let workload = WorkloadBuilder::new(WorkloadParams::ios().with_rate(params.rate))
        .seed(params.seed)
        .n_changes(params.n_changes)
        .build()
        .expect("valid workload params");
    let history = WorkloadBuilder::new(WorkloadParams::ios())
        .seed(params.seed ^ 0xA11CE)
        .n_changes(params.history_changes)
        .build()
        .expect("valid history params");
    // Same training seed as bench_e2e, so the baseline cell's planner
    // decisions match the committed BENCH_e2e.json run bit for bit.
    let (predictor, _) = LearnedPredictor::train(&history, params.seed);
    let skip_threshold = predictor.calibrate_skip_threshold(&history, SKIP_MISS_BUDGET);
    let config = PlannerConfig {
        workers: params.workers,
        faults: Some(SimFaults::at_rate(params.fault_rate, params.seed)),
        ..PlannerConfig::default()
    };
    let cells = ablation_cells(skip_threshold)
        .into_iter()
        .map(|cfg| run_cell(&workload, &predictor, cfg, &config))
        .collect();
    LeanMatrix {
        params: params.clone(),
        skip_threshold,
        cells,
    }
}

fn run_cell(
    workload: &Workload,
    predictor: &LearnedPredictor,
    cfg: LeanConfig,
    config: &PlannerConfig,
) -> LeanCell {
    let strategy = Strategy::lean_with(predictor.clone(), cfg);
    let mut obs = Observer::new();
    let result = run_simulation_observed(workload, &strategy, config, &mut obs);
    let needed = obs.metrics.counter("planner.builds_needed");
    let green = audit_green(workload, &result);
    let wrongful = count_wrongful_rejections(workload, &result);
    LeanCell {
        config: cfg,
        label: cfg.label(),
        result,
        needed,
        green,
        wrongful,
    }
}

/// Gate a finished matrix. Every cell must be always-green with zero
/// wrongful rejections and a non-empty commit log; the all-on cell must
/// not start more wasted builds than the baseline, and must sustain at
/// least the baseline throughput (the headline claim: waste drops, the
/// queue does not slow down). Returns every violation found.
pub fn violations(matrix: &LeanMatrix) -> Vec<String> {
    let mut problems = Vec::new();
    for cell in &matrix.cells {
        if let Err(e) = &cell.green {
            problems.push(format!("{}: always-green violated: {e}", cell.label));
        }
        if cell.wrongful > 0 {
            problems.push(format!(
                "{}: {} wrongful rejection(s)",
                cell.label, cell.wrongful
            ));
        }
        if cell.result.committed() == 0 {
            problems.push(format!("{}: nothing committed", cell.label));
        }
        let report = cell.lean_report();
        if report.skip_hits + report.skip_misses != report.skipped {
            problems.push(format!(
                "{}: skip accounting does not add up ({} + {} != {})",
                cell.label, report.skip_hits, report.skip_misses, report.skipped
            ));
        }
    }
    let (baseline, all_on) = (matrix.baseline(), matrix.all_on());
    if all_on.wasted() > baseline.wasted() {
        problems.push(format!(
            "all-on wasted {} builds, baseline wasted {}",
            all_on.wasted(),
            baseline.wasted()
        ));
    }
    let (base_tp, lean_tp) = (
        baseline.result.sustained_throughput_per_hour(),
        all_on.result.sustained_throughput_per_hour(),
    );
    if lean_tp < base_tp {
        problems.push(format!(
            "all-on sustained throughput {lean_tp} below baseline {base_tp}"
        ));
    }
    problems
}

/// The combined matrix document (`BENCH_lean.json`).
pub fn matrix_json(matrix: &LeanMatrix) -> String {
    let params = &matrix.params;
    let baseline_wasted = matrix.baseline().wasted();
    let all_on_wasted = matrix.all_on().wasted();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "sq-bench-lean/v1");
    w.key("params");
    w.begin_object();
    w.field_u64("seed", params.seed);
    w.field_u64("n_changes", params.n_changes as u64);
    w.field_f64("rate_per_hour", params.rate);
    w.field_u64("workers", params.workers as u64);
    w.field_f64("fault_rate", params.fault_rate);
    w.field_u64("history_changes", params.history_changes as u64);
    w.field_f64("skip_threshold", matrix.skip_threshold);
    w.field_f64("skip_miss_budget", SKIP_MISS_BUDGET);
    w.end_object();
    w.key("cells");
    w.begin_array();
    for cell in &matrix.cells {
        let (p50, p95, p99) = cell.result.turnaround_p50_p95_p99();
        let report = cell.lean_report();
        w.begin_object();
        w.field_str("cell", &cell.label);
        w.field_str("strategy", cell.config.canonical_kind().name());
        w.key("flags");
        w.begin_object();
        w.key("skip");
        w.value_bool(cell.config.skip_threshold.is_some());
        w.key("prioritize");
        w.value_bool(cell.config.prioritize);
        w.key("bypass");
        w.value_bool(cell.config.bypass);
        w.end_object();
        w.key("green");
        w.value_bool(cell.green.is_ok());
        w.field_u64("wrongful_rejections", cell.wrongful as u64);
        w.field_u64("commits", cell.result.committed() as u64);
        w.field_u64("rejects", cell.result.rejected() as u64);
        w.field_f64("throughput_per_hour", cell.result.throughput_per_hour());
        w.field_f64(
            "sustained_throughput_per_hour",
            cell.result.sustained_throughput_per_hour(),
        );
        w.key("turnaround_mins");
        w.begin_object();
        w.field_f64("mean", cell.result.mean_turnaround_mins());
        w.field_f64("p50", p50);
        w.field_f64("p95", p95);
        w.field_f64("p99", p99);
        w.end_object();
        w.key("builds");
        w.begin_object();
        w.field_u64("started", cell.result.builds_started);
        w.field_u64("aborted", cell.result.builds_aborted);
        w.field_u64("needed", cell.needed);
        w.field_u64("wasted", cell.wasted());
        w.end_object();
        w.key("lean");
        w.begin_object();
        w.field_u64("skipped", report.skipped);
        w.field_u64("skip_hits", report.skip_hits);
        w.field_u64("skip_misses", report.skip_misses);
        w.field_f64("skip_miss_rate", report.miss_rate());
        w.field_u64("bypassed", report.bypassed);
        w.end_object();
        w.field_u64("infra_retries", cell.result.infra_retries);
        w.end_object();
    }
    w.end_array();
    w.key("summary");
    w.begin_object();
    w.field_u64("baseline_wasted", baseline_wasted);
    w.field_u64("all_on_wasted", all_on_wasted);
    w.field_f64(
        "wasted_reduction_pct",
        if baseline_wasted == 0 {
            0.0
        } else {
            100.0 * (baseline_wasted - all_on_wasted) as f64 / baseline_wasted as f64
        },
    );
    w.end_object();
    w.end_object();
    w.finish()
}

/// The expected cell labels, in document order.
fn expected_labels(threshold: f64) -> Vec<String> {
    ablation_cells(threshold)
        .iter()
        .map(|c| c.label())
        .collect()
}

/// Validate an ablation document: schema, every ablation cell present
/// in order, each carrying the audited fields and build counts, plus
/// the summary object. Returns the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    use serde::__private::Value;
    let value: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Map(top) = value else {
        return Err("top level is not an object".to_string());
    };
    let get = |m: &[(String, Value)], key: &str| -> Option<Value> {
        m.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    match get(&top, "schema") {
        Some(Value::Str(s)) if s == "sq-bench-lean/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let Some(Value::Seq(cells)) = get(&top, "cells") else {
        return Err("cells is not an array".to_string());
    };
    let expected = expected_labels(0.0);
    if cells.len() != expected.len() {
        return Err(format!(
            "expected {} cells, found {}",
            expected.len(),
            cells.len()
        ));
    }
    for (value, expected_label) in cells.iter().zip(&expected) {
        let Value::Map(c) = value else {
            return Err("cell entry is not an object".to_string());
        };
        match get(c, "cell") {
            Some(Value::Str(label)) if &label == expected_label => {}
            other => return Err(format!("expected cell {expected_label:?}, got {other:?}")),
        }
        for key in [
            "strategy",
            "flags",
            "green",
            "wrongful_rejections",
            "commits",
            "turnaround_mins",
            "builds",
            "lean",
        ] {
            if get(c, key).is_none() {
                return Err(format!("{expected_label}: cell missing {key:?}"));
            }
        }
        let Some(Value::Map(builds)) = get(c, "builds") else {
            return Err(format!("{expected_label}: builds is not an object"));
        };
        for key in ["started", "aborted", "needed", "wasted"] {
            if get(&builds, key).is_none() {
                return Err(format!("{expected_label}: builds missing {key:?}"));
            }
        }
    }
    if get(&top, "summary").is_none() {
        return Err("missing summary".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LeanBenchParams {
        LeanBenchParams {
            seed: 0x5EED,
            n_changes: 40,
            rate: 200.0,
            workers: 30,
            fault_rate: 0.05,
            history_changes: 400,
        }
    }

    #[test]
    fn tiny_matrix_is_audited_valid_and_byte_identical() {
        let params = tiny();
        let matrix = run_matrix(&params);
        assert_eq!(matrix.cells.len(), 5);
        assert_eq!(matrix.cells[0].label, "baseline");
        assert_eq!(matrix.cells[4].label, "skip+prioritize+bypass");
        for cell in &matrix.cells {
            assert!(cell.green.is_ok(), "{}: {:?}", cell.label, cell.green);
            assert_eq!(cell.wrongful, 0, "{} wrongfully rejected", cell.label);
            assert_eq!(cell.result.records.len(), 40, "{}", cell.label);
        }
        // A wrong skip may delay, never inflate the gating-build count:
        // every cell needs the same number of gating builds.
        let needed: Vec<u64> = matrix.cells.iter().map(|c| c.needed).collect();
        assert!(needed.iter().all(|&n| n == needed[0]), "{needed:?}");
        let doc = matrix_json(&matrix);
        validate(&doc).unwrap();
        // A same-seed rerun reproduces the document byte for byte.
        let doc2 = matrix_json(&run_matrix(&params));
        assert_eq!(doc, doc2);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"schema":"wrong","cells":[]}"#).is_err());
        assert!(validate(r#"{"schema":"sq-bench-lean/v1","cells":[]}"#).is_err());
    }
}
