//! The machine-readable scenario matrix behind `bench_scenarios`.
//!
//! Runs every named manifest from [`ScenarioManifest::matrix`] through
//! every strategy in `StrategyKind::all()` (one source of truth for both
//! axes), audits each run, and distills the results into JSON documents:
//! one per scenario, plus a combined matrix document (the committed
//! trajectory `BENCH_scenarios.json`). Like `bench_e2e`, the documents
//! are pure functions of the parameters — simulated time only, sorted
//! metric keys, shortest-round-trip floats — so same-seed reruns emit
//! byte-identical files, which the `--smoke` gate asserts.

use sq_core::scenario::{run_scenario, ScenarioRun};
use sq_core::strategy::StrategyKind;
use sq_obs::JsonWriter;
use sq_workload::{ArrivalCurve, ScenarioManifest};

/// Parameters of one scenario-matrix run.
#[derive(Debug, Clone)]
pub struct ScenarioBenchParams {
    /// Master seed (trace; the training history salts it).
    pub seed: u64,
    /// Replay length per scenario; `None` runs each manifest's full
    /// configured duration.
    pub n_changes_override: Option<usize>,
    /// Training-history size for the SubmitQueue predictor.
    pub history_changes: usize,
}

impl ScenarioBenchParams {
    /// The recorded configuration (what `BENCH_scenarios.json` reports):
    /// every scenario at its full configured duration.
    pub fn standard() -> Self {
        ScenarioBenchParams {
            seed: crate::bench_seed(),
            n_changes_override: None,
            history_changes: 1_500,
        }
    }

    /// A small configuration for CI smoke runs.
    pub fn smoke() -> Self {
        ScenarioBenchParams {
            seed: crate::bench_seed(),
            n_changes_override: Some(70),
            history_changes: 600,
        }
    }
}

/// Run the full named matrix. Panics only on manifest bugs (the named
/// matrix always validates).
pub fn run_matrix(params: &ScenarioBenchParams) -> Vec<ScenarioRun> {
    ScenarioManifest::matrix()
        .iter()
        .map(|m| {
            let n = params
                .n_changes_override
                .unwrap_or_else(|| m.n_changes().expect("named manifest validates"));
            run_scenario(m, params.seed, n, params.history_changes)
                .expect("named manifest validates")
        })
        .collect()
}

/// Audit-gate a finished matrix: every scenario × strategy must be
/// always-green with zero wrongful rejections and a non-empty commit
/// log. Returns every violation found (empty = pass).
pub fn violations(runs: &[ScenarioRun]) -> Vec<String> {
    let mut problems = Vec::new();
    if runs.len() != ScenarioManifest::matrix().len() {
        problems.push(format!(
            "matrix has {} scenarios, expected {}",
            runs.len(),
            ScenarioManifest::matrix().len()
        ));
    }
    for run in runs {
        for o in &run.outcomes {
            let cell = format!("{} / {}", run.manifest.name, o.kind.name());
            if let Err(e) = &o.green {
                problems.push(format!("{cell}: always-green violated: {e}"));
            }
            if let Err(e) = &o.rejections_justified {
                problems.push(format!("{cell}: unjustified rejection: {e}"));
            }
            if o.wrongful_rejections > 0 {
                problems.push(format!(
                    "{cell}: {} wrongful rejection(s)",
                    o.wrongful_rejections
                ));
            }
            if let Some(report) = &o.shard_report {
                for lane in &report.lanes {
                    if lane.wrongful > 0 {
                        problems.push(format!(
                            "{cell}: lane {} has {} wrongful rejection(s)",
                            lane.name, lane.wrongful
                        ));
                    }
                }
            }
            if o.result.committed() == 0 {
                problems.push(format!("{cell}: nothing committed"));
            }
        }
    }
    problems
}

fn arrival_kind(curve: &ArrivalCurve) -> &'static str {
    match curve {
        ArrivalCurve::Constant => "constant",
        ArrivalCurve::Diurnal { .. } => "diurnal",
    }
}

/// Write one scenario's object (shared by the per-scenario documents and
/// the combined matrix document).
fn write_scenario(w: &mut JsonWriter, run: &ScenarioRun) {
    let m = &run.manifest;
    w.begin_object();
    w.field_str("scenario", &m.name);
    w.field_str("description", &m.description);
    w.key("params");
    w.begin_object();
    w.field_u64("seed", run.seed);
    w.field_str("platform", &m.platform.to_string());
    w.field_u64("n_changes", run.workload.changes.len() as u64);
    w.field_f64("rate_per_hour", run.workload.params.changes_per_hour);
    w.field_f64("duration_hours", m.duration_hours);
    w.field_u64("workers", m.workers as u64);
    w.field_f64("infra_fault_rate", m.infra_fault_rate);
    w.field_u64("shards", m.shards as u64);
    w.field_str("arrival", arrival_kind(&m.arrival));
    w.key("adversary");
    w.begin_object();
    w.key("revert_storm");
    w.value_bool(m.adversary.revert_storm.is_some());
    w.key("flaky");
    w.value_bool(m.adversary.flaky.is_some());
    w.key("hub");
    w.value_bool(m.adversary.hub.is_some());
    w.end_object();
    w.field_f64(
        "isolated_success_rate",
        run.workload.isolated_success_rate(),
    );
    w.end_object();
    w.key("strategies");
    w.begin_array();
    for o in &run.outcomes {
        let (p50, p95, p99) = o.result.turnaround_p50_p95_p99();
        w.begin_object();
        w.field_str("strategy", o.kind.name());
        w.key("green");
        w.value_bool(o.green.is_ok());
        w.key("rejections_justified");
        w.value_bool(o.rejections_justified.is_ok());
        w.field_u64("wrongful_rejections", o.wrongful_rejections as u64);
        w.field_u64("commits", o.result.committed() as u64);
        w.field_u64("rejects", o.result.rejected() as u64);
        w.field_f64("throughput_per_hour", o.result.throughput_per_hour());
        w.field_f64(
            "sustained_throughput_per_hour",
            o.result.sustained_throughput_per_hour(),
        );
        w.key("turnaround_mins");
        w.begin_object();
        w.field_f64("mean", o.result.mean_turnaround_mins());
        w.field_f64("p50", p50);
        w.field_f64("p95", p95);
        w.field_f64("p99", p99);
        w.end_object();
        w.field_u64("builds_started", o.result.builds_started);
        w.field_u64("builds_aborted", o.result.builds_aborted);
        w.field_u64("infra_retries", o.result.infra_retries);
        w.field_u64("quarantined", o.result.quarantined.len() as u64);
        if let Some(report) = &o.shard_report {
            w.key("lanes");
            w.begin_array();
            for lane in &report.lanes {
                w.begin_object();
                w.field_str("name", &lane.name);
                w.field_u64("routed", lane.routed as u64);
                w.field_u64("committed", lane.committed as u64);
                w.field_u64("rejected", lane.rejected as u64);
                w.field_u64("wrongful", lane.wrongful as u64);
                w.end_object();
            }
            w.end_array();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/// One scenario's standalone JSON document (the per-scenario artifact
/// CI uploads).
pub fn scenario_json(run: &ScenarioRun) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "sq-bench-scenario/v1");
    w.key("run");
    write_scenario(&mut w, run);
    w.end_object();
    w.finish()
}

/// The combined matrix document (`BENCH_scenarios.json`).
pub fn matrix_json(params: &ScenarioBenchParams, runs: &[ScenarioRun]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "sq-bench-scenario-matrix/v1");
    w.field_u64("seed", params.seed);
    w.field_u64("history_changes", params.history_changes as u64);
    w.field_u64("scenario_count", runs.len() as u64);
    // StrategyKind::COUNT keeps the document honest: a strategy added to
    // `all()` changes this field and every strategies array in lockstep.
    w.field_u64("strategy_count", StrategyKind::COUNT as u64);
    w.key("scenarios");
    w.begin_array();
    for run in runs {
        write_scenario(&mut w, run);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Validate a matrix document: every named scenario present in order,
/// each with exactly `strategy_count` strategy rows carrying the audited
/// fields. Returns a description of the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    use serde::__private::Value;
    let value: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Map(top) = value else {
        return Err("top level is not an object".to_string());
    };
    let get = |m: &[(String, Value)], key: &str| -> Option<Value> {
        m.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    match get(&top, "schema") {
        Some(Value::Str(s)) if s == "sq-bench-scenario-matrix/v1" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let Some(Value::Seq(scenarios)) = get(&top, "scenarios") else {
        return Err("scenarios is not an array".to_string());
    };
    let expected: Vec<String> = ScenarioManifest::matrix()
        .into_iter()
        .map(|m| m.name)
        .collect();
    if scenarios.len() != expected.len() {
        return Err(format!(
            "expected {} scenarios, found {}",
            expected.len(),
            scenarios.len()
        ));
    }
    for (value, expected_name) in scenarios.iter().zip(&expected) {
        let Value::Map(s) = value else {
            return Err("scenario entry is not an object".to_string());
        };
        match get(s, "scenario") {
            Some(Value::Str(name)) if &name == expected_name => {}
            other => {
                return Err(format!(
                    "expected scenario {expected_name:?}, got {other:?}"
                ))
            }
        }
        let Some(Value::Seq(strategies)) = get(s, "strategies") else {
            return Err(format!("{expected_name}: strategies is not an array"));
        };
        if strategies.len() != StrategyKind::COUNT {
            return Err(format!(
                "{expected_name}: {} strategy rows, expected {}",
                strategies.len(),
                StrategyKind::COUNT
            ));
        }
        // The census check: every StrategyKind, in `all()` order, in
        // every scenario document — a kind added to the enum that never
        // reaches the matrix fails validation here.
        for (row, kind) in strategies.iter().zip(StrategyKind::all()) {
            let Value::Map(r) = row else {
                return Err(format!("{expected_name}: strategy row is not an object"));
            };
            match get(r, "strategy") {
                Some(Value::Str(name)) if name == kind.name() => {}
                other => {
                    return Err(format!(
                        "{expected_name}: expected strategy {:?}, got {other:?}",
                        kind.name()
                    ))
                }
            }
            for key in [
                "strategy",
                "green",
                "rejections_justified",
                "wrongful_rejections",
                "commits",
                "turnaround_mins",
            ] {
                if get(r, key).is_none() {
                    return Err(format!("{expected_name}: strategy row missing {key:?}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_emits_valid_byte_identical_documents() {
        let params = ScenarioBenchParams {
            seed: 0x5EED,
            n_changes_override: Some(24),
            history_changes: 200,
        };
        let runs = run_matrix(&params);
        assert_eq!(runs.len(), ScenarioManifest::matrix().len());
        let doc = matrix_json(&params, &runs);
        validate(&doc).unwrap();
        for run in &runs {
            // Per-scenario documents parse as JSON too.
            let json = scenario_json(run);
            assert!(serde_json::from_str::<serde::__private::Value>(&json).is_ok());
        }
        // A same-seed rerun reproduces the document byte for byte.
        let doc2 = matrix_json(&params, &run_matrix(&params));
        assert_eq!(doc, doc2);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"schema":"sq-bench-scenario-matrix/v1","scenarios":[]}"#).is_err());
        assert!(validate(r#"{"schema":"wrong","scenarios":[]}"#).is_err());
    }
}
