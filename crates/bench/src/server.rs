//! The serving-layer load generator behind `bench_server`.
//!
//! Replays an `sq-workload` trace against a **live loopback server**
//! (`sq-server` fronting a [`DurableSubmitQueue`]) and measures two
//! things over the same seeded run:
//!
//! * **Sequential replay** — every workload change goes over the wire
//!   as `Head` → `Enqueue` → `SubscribeVerdict`, waiting for the
//!   verdict before the next change, so ticket assignment, commit
//!   order, and every counter are deterministic. Per-request wall
//!   latencies (enqueue-to-ack and enqueue-to-verdict) are recorded
//!   through `sq-obs` histograms and reported as P50/P95/P99 in the
//!   timing document only.
//! * **Drain durability** — a pipelined burst of enqueues is acked,
//!   the server is gracefully drained mid-queue, the queue is
//!   reopened from the same storage, and a fresh server proves every
//!   acked ticket still reaches `Landed`. `lost` must be zero: an ack
//!   is a journal-backed promise that survives a restart.
//!
//! The deterministic counters (changes landed, commits, journal
//! appends summed across both server lives, acks, losses) go into the
//! committed document; wall time and latency percentiles go into a
//! separate timing document, so the committed file is
//! byte-reproducible — `--smoke` runs the whole benchmark twice and
//! fails unless the two documents are identical.

use sq_core::durable::DurableSubmitQueue;
use sq_core::service::StepAction;
use sq_core::RecoveryConfig;
use sq_exec::StepOutcome;
use sq_obs::{JsonWriter, MetricsRegistry};
use sq_server::{Client, Endpoint, Request, Response, Server, ServerConfig, WireTicketState};
use sq_store::{DurableStore, DurableStoreConfig, MemStorage};
use sq_vcs::{CommitId, Patch, RepoPath};
use sq_workload::repo_model::MaterializedRepo;
use sq_workload::{WorkloadBuilder, WorkloadParams};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type Shared = Arc<Mutex<MemStorage>>;
type Queue = DurableSubmitQueue<DurableStore<Shared>>;

/// Parameters of one serving-layer benchmark run.
#[derive(Debug, Clone)]
pub struct ServerBenchParams {
    /// Master seed for the workload and repository.
    pub seed: u64,
    /// Logical parts (= packages) in the materialized repo.
    pub n_parts: usize,
    /// Workload changes replayed sequentially over the wire.
    pub n_changes: usize,
    /// Pipelined enqueues acked right before the graceful drain.
    pub burst: usize,
    /// Speculation window of the queue under test.
    pub window: usize,
    /// Snapshot cadence of the store.
    pub snapshot_every: u64,
    /// Target enqueue rate in changes/second for the sequential phase
    /// (`0.0` = unpaced, as fast as the loop turns). Pacing only
    /// shapes the timing document; the deterministic counters are
    /// rate-independent.
    pub rate: f64,
    /// Serve over a Unix-domain socket instead of TCP loopback.
    pub use_uds: bool,
}

impl ServerBenchParams {
    /// The recorded configuration (what `bench_server` runs by default
    /// and what `BENCH_server.json` at the repo root reports).
    pub fn standard() -> Self {
        ServerBenchParams {
            seed: crate::bench_seed(),
            n_parts: 32,
            n_changes: 48,
            burst: 8,
            window: 2,
            snapshot_every: 16,
            rate: 0.0,
            use_uds: false,
        }
    }

    /// A small configuration for CI smoke runs.
    pub fn smoke() -> Self {
        ServerBenchParams {
            seed: crate::bench_seed(),
            n_parts: 16,
            n_changes: 12,
            burst: 4,
            window: 2,
            snapshot_every: 8,
            rate: 0.0,
            use_uds: false,
        }
    }
}

/// Deterministic counters from the sequential replay phase.
#[derive(Debug, Clone)]
pub struct SequentialCell {
    /// Workload changes replayed.
    pub changes: u64,
    /// Changes that landed (must equal `changes`).
    pub landed: u64,
}

/// Deterministic counters from the drain-durability phase.
#[derive(Debug, Clone)]
pub struct DurabilityCell {
    /// Pipelined enqueues sent before the drain.
    pub burst: u64,
    /// Enqueues acked before the drain (must equal `burst`).
    pub acked: u64,
    /// Acked tickets that reached `Landed` after the restart.
    pub landed_after_restart: u64,
    /// Acked tickets lost across the drain/restart (must be 0).
    pub lost: u64,
    /// Queue depth once every burst ticket reached a verdict.
    pub queue_depth_after: u64,
}

/// End-of-run totals summed across both server lives.
#[derive(Debug, Clone)]
pub struct TotalsCell {
    /// `server.requests.enqueue` across both lives.
    pub requests_enqueue: u64,
    /// `server.enqueues.acked` across both lives.
    pub enqueues_acked: u64,
    /// `server.busy_replies` across both lives (must be 0).
    pub busy_replies: u64,
    /// `server.tickets.processed` across both lives.
    pub tickets_processed: u64,
    /// Journal appends summed across both store lives.
    pub journal_appends: u64,
    /// Changes landed across the whole run, burst included.
    pub landed: u64,
    /// Mainline commits including the root, at the end of the run.
    pub commits: u64,
}

/// Wall-clock measurements (timing document only).
#[derive(Debug, Clone)]
pub struct TimingCell {
    /// Wall time of the sequential phase, in nanoseconds.
    pub elapsed_nanos: u64,
    /// Requests sent during the sequential phase.
    pub requests: u64,
    /// Enqueue-to-ack latency percentiles, in microseconds.
    pub ack_p50: f64,
    /// P95 of enqueue-to-ack, in microseconds.
    pub ack_p95: f64,
    /// P99 of enqueue-to-ack, in microseconds.
    pub ack_p99: f64,
    /// Enqueue-to-verdict latency percentiles, in microseconds.
    pub verdict_p50: f64,
    /// P95 of enqueue-to-verdict, in microseconds.
    pub verdict_p95: f64,
    /// P99 of enqueue-to-verdict, in microseconds.
    pub verdict_p99: f64,
}

/// A full benchmark report.
#[derive(Debug, Clone)]
pub struct ServerBenchReport {
    /// The parameters the run used.
    pub params: ServerBenchParams,
    /// The sequential replay phase.
    pub sequential: SequentialCell,
    /// The drain-durability phase.
    pub durability: DurabilityCell,
    /// End-of-run totals across both server lives.
    pub totals: TotalsCell,
    /// Wall-clock companion (never serialized into the committed doc).
    pub timing: TimingCell,
}

impl ServerBenchReport {
    /// Render the committed machine-readable document. Every field is
    /// deterministic for a given seed — wall-clock numbers live in
    /// [`Self::to_timing_json`] — so reruns are byte-identical.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "sq-bench-server/v1");
        w.key("params");
        w.begin_object();
        w.field_u64("seed", self.params.seed);
        w.field_u64("n_parts", self.params.n_parts as u64);
        w.field_u64("n_changes", self.params.n_changes as u64);
        w.field_u64("burst", self.params.burst as u64);
        w.field_u64("window", self.params.window as u64);
        w.field_u64("snapshot_every", self.params.snapshot_every);
        w.field_str("transport", if self.params.use_uds { "uds" } else { "tcp" });
        w.end_object();
        w.key("sequential");
        w.begin_object();
        w.field_u64("changes", self.sequential.changes);
        w.field_u64("landed", self.sequential.landed);
        w.end_object();
        w.key("durability");
        w.begin_object();
        w.field_u64("burst", self.durability.burst);
        w.field_u64("acked", self.durability.acked);
        w.field_u64("landed_after_restart", self.durability.landed_after_restart);
        w.field_u64("lost", self.durability.lost);
        w.field_u64("queue_depth_after", self.durability.queue_depth_after);
        w.end_object();
        w.key("totals");
        w.begin_object();
        w.field_u64("requests_enqueue", self.totals.requests_enqueue);
        w.field_u64("enqueues_acked", self.totals.enqueues_acked);
        w.field_u64("busy_replies", self.totals.busy_replies);
        w.field_u64("tickets_processed", self.totals.tickets_processed);
        w.field_u64("journal_appends", self.totals.journal_appends);
        w.field_u64("landed", self.totals.landed);
        w.field_u64("commits", self.totals.commits);
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Render the wall-clock companion document (not committed: timing
    /// is inherently non-reproducible).
    pub fn to_timing_json(&self) -> String {
        let t = &self.timing;
        let secs = t.elapsed_nanos.max(1) as f64 / 1e9;
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "sq-bench-server-timing/v1");
        w.field_f64("elapsed_ms", t.elapsed_nanos as f64 / 1e6);
        w.field_u64("requests", t.requests);
        w.field_f64("requests_per_sec", t.requests as f64 / secs);
        w.field_f64("ack_p50_micros", t.ack_p50);
        w.field_f64("ack_p95_micros", t.ack_p95);
        w.field_f64("ack_p99_micros", t.ack_p99);
        w.field_f64("verdict_p50_micros", t.verdict_p50);
        w.field_f64("verdict_p95_micros", t.verdict_p95);
        w.field_f64("verdict_p99_micros", t.verdict_p99);
        w.end_object();
        w.finish()
    }

    /// The CI gate: every workload change landed, every acked burst
    /// enqueue survived the drain/restart, nothing was refused, and
    /// the queue fully drained.
    pub fn smoke_gate(&self) -> Result<(), String> {
        if self.sequential.landed != self.sequential.changes {
            return Err(format!(
                "sequential: {} of {} changes landed",
                self.sequential.landed, self.sequential.changes
            ));
        }
        if self.durability.acked != self.durability.burst {
            return Err(format!(
                "durability: only {} of {} burst enqueues acked",
                self.durability.acked, self.durability.burst
            ));
        }
        if self.durability.lost != 0 {
            return Err(format!(
                "durability: {} acked enqueues lost across the restart",
                self.durability.lost
            ));
        }
        if self.durability.queue_depth_after != 0 {
            return Err(format!(
                "durability: {} tickets still queued after all verdicts",
                self.durability.queue_depth_after
            ));
        }
        if self.totals.busy_replies != 0 {
            return Err(format!(
                "{} Busy refusals under an in-bounds load",
                self.totals.busy_replies
            ));
        }
        Ok(())
    }
}

fn always_pass() -> Box<StepAction> {
    Box::new(|_step, _tree| StepOutcome::Success)
}

fn open_queue(repo: sq_vcs::Repository, storage: &Shared, params: &ServerBenchParams) -> Queue {
    DurableSubmitQueue::open(
        repo,
        params.window,
        RecoveryConfig::disabled(),
        storage.clone(),
        DurableStoreConfig::with_snapshot_every(params.snapshot_every),
    )
    .expect("open durable queue")
}

fn start_server(queue: Queue, params: &ServerBenchParams) -> Server<DurableStore<Shared>> {
    let endpoint = if params.use_uds {
        Endpoint::Uds(
            std::env::temp_dir().join(format!("sq-bench-server-{}.sock", std::process::id())),
        )
    } else {
        Endpoint::Tcp("127.0.0.1:0".into())
    };
    Server::start(
        queue,
        always_pass(),
        ServerConfig {
            poll_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        },
        &[endpoint],
    )
    .expect("start loopback server")
}

fn connect(server: &Server<DurableStore<Shared>>, params: &ServerBenchParams) -> Client {
    if params.use_uds {
        Client::connect_uds(server.uds_path().expect("uds endpoint")).expect("connect uds")
    } else {
        Client::connect_tcp(server.tcp_addr().expect("tcp endpoint")).expect("connect tcp")
    }
}

fn head(client: &mut Client) -> CommitId {
    match client.call(&Request::Head).expect("head round trip") {
        Response::HeadIs { commit } => commit,
        other => panic!("expected HeadIs, got {other:?}"),
    }
}

fn quantile(metrics: &MetricsRegistry, name: &str, q: f64) -> f64 {
    metrics
        .histogram(name)
        .and_then(|h| h.quantile(q))
        .unwrap_or(0.0)
}

/// Run the full benchmark: sequential replay over a live socket, then
/// the pipelined-burst drain/restart durability phase.
pub fn run_server_bench(params: &ServerBenchParams) -> ServerBenchReport {
    let mut wl = WorkloadParams::ios();
    wl.n_parts = params.n_parts;
    let m = MaterializedRepo::generate(&wl).expect("valid repo params");
    let w = WorkloadBuilder::new(wl)
        .seed(params.seed)
        .n_changes(params.n_changes)
        .build()
        .expect("valid workload params");

    let storage: Shared = Arc::new(Mutex::new(MemStorage::new()));
    let server = start_server(open_queue(m.repo.clone(), &storage, params), params);
    let mut client = connect(&server, params);

    // Phase 1 — sequential replay: Head → Enqueue → SubscribeVerdict
    // per change, so every counter is deterministic. Latencies go into
    // sq-obs histograms; only their percentiles are reported.
    let mut lat = MetricsRegistry::new();
    let mut requests = 0u64;
    let start = Instant::now();
    for (i, c) in w.changes.iter().enumerate() {
        if params.rate > 0.0 {
            let due = Duration::from_secs_f64(i as f64 / params.rate);
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
        }
        let base = head(&mut client);
        let sent = Instant::now();
        let ticket = match client
            .call(&Request::Enqueue {
                author: format!("dev{}", c.developer.0),
                description: format!("change {}", c.id),
                base,
                patch: m.patch_for(c),
            })
            .expect("enqueue round trip")
        {
            Response::Enqueued { ticket } => ticket,
            other => panic!("expected Enqueued, got {other:?}"),
        };
        lat.observe("server.ack_micros", sent.elapsed().as_secs_f64() * 1e6);
        match client
            .call(&Request::SubscribeVerdict {
                ticket,
                timeout_ms: 60_000,
            })
            .expect("subscribe round trip")
        {
            Response::Verdict { state, .. } => {
                assert!(
                    matches!(state, WireTicketState::Landed(_)),
                    "workload change {} failed to land: {state:?}",
                    c.id
                );
            }
            other => panic!("expected Verdict, got {other:?}"),
        }
        lat.observe("server.verdict_micros", sent.elapsed().as_secs_f64() * 1e6);
        requests += 3;
    }
    let elapsed_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);

    // Phase 2 — drain durability: pipeline a burst of disjoint-file
    // enqueues, collect the acks, then gracefully drain mid-queue.
    let base = head(&mut client);
    requests += 1;
    for i in 0..params.burst {
        client
            .send(&Request::Enqueue {
                author: "burst".into(),
                description: format!("burst {i}"),
                base,
                patch: Patch::write(
                    RepoPath::new(format!("bench/acked_{i}.rs")).expect("valid path"),
                    format!("pub fn acked_{i}() {{}}"),
                ),
            })
            .expect("pipelined enqueue");
    }
    let mut tickets = Vec::new();
    for _ in 0..params.burst {
        match client.recv().expect("pipelined ack") {
            Response::Enqueued { ticket } => tickets.push(ticket),
            Response::Busy { .. } => {}
            other => panic!("expected Enqueued or Busy, got {other:?}"),
        }
        requests += 1;
    }
    let acked = tickets.len() as u64;
    drop(client);
    let (queue, metrics_a) = server.shutdown();
    let appends_a = queue.store_stats().appends;

    // "Restart": recover from the same storage, serve again, and
    // demand a verdict for every acked ticket.
    let repo = queue.repository();
    drop(queue);
    let server = start_server(open_queue(repo, &storage, params), params);
    let mut client = connect(&server, params);
    let mut landed_after_restart = 0u64;
    for &t in &tickets {
        match client
            .call(&Request::SubscribeVerdict {
                ticket: t,
                timeout_ms: 60_000,
            })
            .expect("post-restart subscribe")
        {
            Response::Verdict { state, .. } => {
                if matches!(state, WireTicketState::Landed(_)) {
                    landed_after_restart += 1;
                }
            }
            Response::StatusIs { state: None } => {} // lost: counted below
            other => panic!("expected Verdict, got {other:?}"),
        }
        requests += 1;
    }
    drop(client);
    let (queue, metrics_b) = server.shutdown();
    let appends_b = queue.store_stats().appends;
    let landed_total = queue.service().stats().landed;
    let commits = {
        let repo = queue.repository();
        repo.log(repo.head()).expect("mainline log").len() as u64
    };
    let queue_depth_after = queue.queue_depth() as u64;

    let both = |name: &str| metrics_a.counter(name) + metrics_b.counter(name);
    ServerBenchReport {
        params: params.clone(),
        sequential: SequentialCell {
            changes: w.changes.len() as u64,
            landed: w.changes.len() as u64,
        },
        durability: DurabilityCell {
            burst: params.burst as u64,
            acked,
            landed_after_restart,
            lost: acked - landed_after_restart,
            queue_depth_after,
        },
        totals: TotalsCell {
            requests_enqueue: both("server.requests.enqueue"),
            enqueues_acked: both("server.enqueues.acked"),
            busy_replies: both("server.busy_replies"),
            tickets_processed: both("server.tickets.processed"),
            journal_appends: appends_a + appends_b,
            landed: landed_total,
            commits,
        },
        timing: TimingCell {
            elapsed_nanos,
            requests,
            ack_p50: quantile(&lat, "server.ack_micros", 0.50),
            ack_p95: quantile(&lat, "server.ack_micros", 0.95),
            ack_p99: quantile(&lat, "server.ack_micros", 0.99),
            verdict_p50: quantile(&lat, "server.verdict_micros", 0.50),
            verdict_p95: quantile(&lat, "server.verdict_micros", 0.95),
            verdict_p99: quantile(&lat, "server.verdict_micros", 0.99),
        },
    }
}

/// Required keys of the `"sequential"` section.
const SEQUENTIAL_KEYS: &[&str] = &["changes", "landed"];

/// Required keys of the `"durability"` section.
const DURABILITY_KEYS: &[&str] = &[
    "burst",
    "acked",
    "landed_after_restart",
    "lost",
    "queue_depth_after",
];

/// Required keys of the `"totals"` section.
const TOTALS_KEYS: &[&str] = &[
    "requests_enqueue",
    "enqueues_acked",
    "busy_replies",
    "tickets_processed",
    "journal_appends",
    "landed",
    "commits",
];

/// Validate a benchmark document: it must parse as JSON, carry the
/// schema and parameters, every section must be complete, and `lost`
/// must be zero. Returns the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    use serde::__private::Value;
    let value: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Map(entries) = value else {
        return Err("top level is not an object".to_string());
    };
    let field = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match field("schema") {
        Some(Value::Str(s)) if s == "sq-bench-server/v1" => {}
        _ => return Err("missing or unexpected schema".to_string()),
    }
    let Some(Value::Map(params)) = field("params") else {
        return Err("\"params\" is not an object".to_string());
    };
    for key in [
        "seed",
        "n_parts",
        "n_changes",
        "burst",
        "window",
        "snapshot_every",
        "transport",
    ] {
        if !params.iter().any(|(k, _)| k == key) {
            return Err(format!("missing key params.{key}"));
        }
    }
    for (section, keys) in [
        ("sequential", SEQUENTIAL_KEYS),
        ("durability", DURABILITY_KEYS),
        ("totals", TOTALS_KEYS),
    ] {
        let Some(Value::Map(m)) = field(section) else {
            return Err(format!("\"{section}\" is not an object"));
        };
        for key in keys {
            if !m.iter().any(|(k, _)| k == key) {
                return Err(format!("missing key {section}.{key}"));
            }
        }
    }
    let Some(Value::Map(durability)) = field("durability") else {
        unreachable!("checked above");
    };
    match durability.iter().find(|(k, _)| k == "lost") {
        Some((_, Value::U64(0))) => Ok(()),
        _ => Err("acked enqueues were lost across the restart".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServerBenchParams {
        ServerBenchParams {
            seed: 7,
            n_parts: 8,
            n_changes: 4,
            burst: 3,
            window: 2,
            snapshot_every: 8,
            rate: 0.0,
            use_uds: false,
        }
    }

    #[test]
    fn tiny_run_is_deterministic_and_passes_the_gate() {
        let a = run_server_bench(&tiny());
        a.smoke_gate().expect("gate holds");
        validate(&a.to_json()).expect("document is valid");
        let b = run_server_bench(&tiny());
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "committed document must be byte-reproducible"
        );
        assert_eq!(a.durability.lost, 0);
        assert_eq!(a.sequential.landed, 4);
        assert!(a.timing.requests > 0);
    }

    #[test]
    fn validate_flags_malformed_documents() {
        assert!(validate("nope").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        assert!(validate(r#"{"schema":"sq-bench-server/v1"}"#)
            .unwrap_err()
            .contains("params"));
        let lost = r#"{"schema":"sq-bench-server/v1",
            "params":{"seed":1,"n_parts":8,"n_changes":4,"burst":2,"window":2,
                      "snapshot_every":8,"transport":"tcp"},
            "sequential":{"changes":4,"landed":4},
            "durability":{"burst":2,"acked":2,"landed_after_restart":1,"lost":1,
                          "queue_depth_after":0},
            "totals":{"requests_enqueue":6,"enqueues_acked":6,"busy_replies":0,
                      "tickets_processed":6,"journal_appends":20,"landed":5,
                      "commits":6}}"#;
        assert!(validate(lost).unwrap_err().contains("lost"));
    }
}
