//! The sharded-planner scaling benchmark behind `bench_shard`.
//!
//! Runs the **same** workload through the planner twice under the
//! **same** planning-cost model (`PlanningCost`, the paper's Section 6
//! epoch made load-adaptive):
//!
//! * **single-queue** — one global pending window over the whole fleet.
//!   At monorepo-scale arrival rates the window grows, each planning
//!   round slows down (`base + per_pending · n`), scheduling falls
//!   behind, and throughput collapses: the planner, not the workers,
//!   saturates.
//! * **sharded** — a [`ShardPlan`] routes each change to its shard's
//!   planning lane (multi-shard footprints to the arbiter lane), each
//!   lane plans only its own small window on its own worker split, and
//!   the conflict graph stays global. Per-lane windows stay bounded, so
//!   ticks stay fast and throughput tracks the arrival rate.
//!
//! The committed document (`BENCH_shard.json` at the repo root) is a
//! pure function of the parameters — simulated time only, deterministic
//! floats — so same-seed reruns are byte-identical, which `--smoke`
//! asserts along with the correctness gates: both runs always-green on
//! the merged trunk, zero wrongful rejections globally *and per lane*,
//! and sharded sustained throughput at least the single-queue's. The
//! recorded configuration additionally gates the headline scale claim:
//! sharded sustains ≥ 10k changes/hour where single-queue saturates
//! below.

use sq_core::audit;
use sq_core::planner::{run_simulation, PlannerConfig, SimResult};
use sq_core::shard::{PlanningCost, ShardPlan, ShardReport, ShardSpec};
use sq_core::strategy::{Strategy, StrategyKind};
use sq_obs::JsonWriter;
use sq_sim::SimDuration;
use sq_workload::{Workload, WorkloadBuilder, WorkloadParams};

/// Salt for the predictor-training history (mirrors the scenario
/// runner's convention: same statistics, disjoint trace).
const HISTORY_SALT: u64 = 0xA11CE;

/// Parameters of one sharding benchmark run.
#[derive(Debug, Clone)]
pub struct ShardBenchParams {
    /// Master seed (the training history salts it).
    pub seed: u64,
    /// Arrival rate in changes/hour.
    pub rate_per_hour: f64,
    /// Hours of arrivals replayed.
    pub hours: f64,
    /// Logical parts in the cell's repository model.
    pub n_parts: usize,
    /// Shards the part space is partitioned into (lanes = shards + 1).
    pub n_shards: usize,
    /// Total worker fleet, identical for both configurations.
    pub total_workers: usize,
    /// Fixed planning-round cost, in milliseconds of simulated time.
    pub planning_base_ms: u64,
    /// Marginal planning cost per pending change, in milliseconds.
    pub planning_per_pending_ms: u64,
    /// Training-history size for the SubmitQueue predictor.
    pub history_changes: usize,
    /// Headline gate: sharded must sustain at least this rate and
    /// single-queue must saturate below it (`0.0` disables, as the
    /// smoke configuration does — relative ordering is still gated).
    pub throughput_floor: f64,
}

impl ShardBenchParams {
    /// The recorded configuration (what `BENCH_shard.json` reports): a
    /// large cell where the arrival rate exceeds what one planning
    /// window can schedule but not what the fleet can build.
    pub fn standard() -> Self {
        ShardBenchParams {
            seed: crate::bench_seed(),
            rate_per_hour: 14_000.0,
            hours: 0.5,
            n_parts: 8_192,
            n_shards: 16,
            total_workers: 3_600,
            planning_base_ms: 2_000,
            planning_per_pending_ms: 700,
            history_changes: 4_000,
            throughput_floor: 10_000.0,
        }
    }

    /// A small configuration for CI smoke runs: the same saturation
    /// regime (arrival rate × per-pending cost ≈ 2.3 ≫ 1 for the single
    /// window, ≲ 0.3 for every lane) at a fraction of the scale.
    pub fn smoke() -> Self {
        ShardBenchParams {
            seed: crate::bench_seed(),
            rate_per_hour: 2_400.0,
            hours: 0.5,
            n_parts: 2_048,
            n_shards: 8,
            total_workers: 400,
            planning_base_ms: 2_000,
            planning_per_pending_ms: 3_500,
            history_changes: 800,
            throughput_floor: 0.0,
        }
    }

    /// Changes replayed (`rate × hours`).
    pub fn n_changes(&self) -> usize {
        (self.rate_per_hour * self.hours).round() as usize
    }

    /// The cell's workload profile: iOS-shaped contention over a larger
    /// part space, with mostly single-part changes (so shard routing has
    /// a meaningful fast path) and short builds (so the fleet, not build
    /// latency, sets the worker-bound ceiling).
    pub fn workload_params(&self) -> WorkloadParams {
        let mut p = WorkloadParams::ios().with_rate(self.rate_per_hour);
        p.n_parts = self.n_parts;
        // At 10k+ changes/hour the repository is far larger than the
        // iOS cell's 300 parts — contention must scale down with rate
        // or every run drowns in justified conflict rejections instead
        // of exercising the planner. A flat-ish popularity curve over a
        // wide part space keeps real conflicts present but rare.
        p.part_zipf_s = 0.3;
        p.mean_parts_per_change = 1.1;
        p.duration_median_mins = 5.0;
        p.duration_min_mins = 1.0;
        p.duration_max_mins = 20.0;
        p
    }

    fn planning_cost(&self) -> PlanningCost {
        PlanningCost {
            base: SimDuration::from_millis(self.planning_base_ms),
            per_pending: SimDuration::from_millis(self.planning_per_pending_ms),
        }
    }
}

/// One configuration's outcome (single-queue or sharded).
#[derive(Debug, Clone)]
pub struct QueueCell {
    /// `"single-queue"` or `"sharded"`.
    pub label: String,
    /// Changes replayed.
    pub changes: u64,
    /// Changes that resolved (must equal `changes`).
    pub resolved: u64,
    /// Commits on the merged trunk.
    pub commits: u64,
    /// Rejections.
    pub rejects: u64,
    /// Whether the merged trunk passed `audit_green`.
    pub green: bool,
    /// Whether every rejection had a ground-truth justification.
    pub rejections_justified: bool,
    /// Wrongful rejections (must be 0).
    pub wrongful: u64,
    /// Sustained commit throughput (inter-quartile window), changes/h.
    pub sustained_per_hour: f64,
    /// Average throughput over the makespan, changes/h.
    pub throughput_per_hour: f64,
    /// Turnaround P50 in minutes.
    pub p50_mins: f64,
    /// Turnaround P95 in minutes.
    pub p95_mins: f64,
    /// Turnaround P99 in minutes.
    pub p99_mins: f64,
    /// Builds started.
    pub builds_started: u64,
    /// Builds aborted.
    pub builds_aborted: u64,
    /// Makespan in hours.
    pub makespan_hours: f64,
}

impl QueueCell {
    fn from_result(label: &str, workload: &Workload, r: &SimResult) -> QueueCell {
        let (p50, p95, p99) = r.turnaround_p50_p95_p99();
        QueueCell {
            label: label.to_string(),
            changes: workload.changes.len() as u64,
            resolved: r.records.len() as u64,
            commits: r.committed() as u64,
            rejects: r.rejected() as u64,
            green: audit::audit_green(workload, r).is_ok(),
            rejections_justified: audit::audit_rejections_justified(workload, r).is_ok(),
            wrongful: audit::count_wrongful_rejections(workload, r) as u64,
            sustained_per_hour: r.sustained_throughput_per_hour(),
            throughput_per_hour: r.throughput_per_hour(),
            p50_mins: p50,
            p95_mins: p95,
            p99_mins: p99,
            builds_started: r.builds_started,
            builds_aborted: r.builds_aborted,
            makespan_hours: r.makespan.as_hours_f64(),
        }
    }
}

/// One lane's slice of the sharded run.
#[derive(Debug, Clone)]
pub struct LaneCell {
    /// Lane name (`s00`…, `arbiter`).
    pub name: String,
    /// Workers allotted to the lane.
    pub workers: u64,
    /// Changes routed to the lane.
    pub routed: u64,
    /// Commits from the lane.
    pub committed: u64,
    /// Rejections from the lane.
    pub rejected: u64,
    /// Wrongful rejections attributed to the lane (must be 0).
    pub wrongful: u64,
}

/// A full benchmark report.
#[derive(Debug, Clone)]
pub struct ShardBenchReport {
    /// The parameters the run used.
    pub params: ShardBenchParams,
    /// The single-global-window configuration.
    pub single: QueueCell,
    /// The sharded multi-lane configuration.
    pub sharded: QueueCell,
    /// Per-lane breakdown of the sharded run.
    pub lanes: Vec<LaneCell>,
}

impl ShardBenchReport {
    /// Render the committed machine-readable document. Every field is a
    /// pure function of the parameters (simulated time only), so reruns
    /// are byte-identical.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "sq-bench-shard/v1");
        w.key("params");
        w.begin_object();
        w.field_u64("seed", self.params.seed);
        w.field_f64("rate_per_hour", self.params.rate_per_hour);
        w.field_f64("hours", self.params.hours);
        w.field_u64("n_changes", self.params.n_changes() as u64);
        w.field_u64("n_parts", self.params.n_parts as u64);
        w.field_u64("n_shards", self.params.n_shards as u64);
        w.field_u64("total_workers", self.params.total_workers as u64);
        w.field_u64("planning_base_ms", self.params.planning_base_ms);
        w.field_u64(
            "planning_per_pending_ms",
            self.params.planning_per_pending_ms,
        );
        w.field_u64("history_changes", self.params.history_changes as u64);
        w.field_f64("throughput_floor", self.params.throughput_floor);
        w.end_object();
        for cell in [&self.single, &self.sharded] {
            w.key(&cell.label);
            w.begin_object();
            w.field_u64("changes", cell.changes);
            w.field_u64("resolved", cell.resolved);
            w.field_u64("commits", cell.commits);
            w.field_u64("rejects", cell.rejects);
            w.key("green");
            w.value_bool(cell.green);
            w.key("rejections_justified");
            w.value_bool(cell.rejections_justified);
            w.field_u64("wrongful_rejections", cell.wrongful);
            w.field_f64("sustained_per_hour", cell.sustained_per_hour);
            w.field_f64("throughput_per_hour", cell.throughput_per_hour);
            w.key("turnaround_mins");
            w.begin_object();
            w.field_f64("p50", cell.p50_mins);
            w.field_f64("p95", cell.p95_mins);
            w.field_f64("p99", cell.p99_mins);
            w.end_object();
            w.field_u64("builds_started", cell.builds_started);
            w.field_u64("builds_aborted", cell.builds_aborted);
            w.field_f64("makespan_hours", cell.makespan_hours);
            w.end_object();
        }
        w.key("lanes");
        w.begin_array();
        for l in &self.lanes {
            w.begin_object();
            w.field_str("name", &l.name);
            w.field_u64("workers", l.workers);
            w.field_u64("routed", l.routed);
            w.field_u64("committed", l.committed);
            w.field_u64("rejected", l.rejected);
            w.field_u64("wrongful", l.wrongful);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// The CI gate: both configurations resolve everything and keep the
    /// merged trunk green with zero wrongful rejections (globally and
    /// per lane), and sharding never loses throughput. With a
    /// `throughput_floor`, the headline claim is gated too: sharded
    /// sustains at least the floor while single-queue saturates below.
    pub fn smoke_gate(&self) -> Result<(), String> {
        for cell in [&self.single, &self.sharded] {
            if cell.resolved != cell.changes {
                return Err(format!(
                    "{}: only {} of {} changes resolved",
                    cell.label, cell.resolved, cell.changes
                ));
            }
            if !cell.green {
                return Err(format!("{}: merged trunk is not always-green", cell.label));
            }
            if !cell.rejections_justified {
                return Err(format!("{}: a rejection lacks justification", cell.label));
            }
            if cell.wrongful != 0 {
                return Err(format!(
                    "{}: {} wrongful rejection(s)",
                    cell.label, cell.wrongful
                ));
            }
        }
        for l in &self.lanes {
            if l.wrongful != 0 {
                return Err(format!(
                    "lane {}: {} wrongful rejection(s)",
                    l.name, l.wrongful
                ));
            }
        }
        let routed: u64 = self.lanes.iter().map(|l| l.routed).sum();
        if routed != self.sharded.resolved {
            return Err(format!(
                "lanes account for {routed} of {} resolved changes",
                self.sharded.resolved
            ));
        }
        if self.sharded.sustained_per_hour < self.single.sustained_per_hour {
            return Err(format!(
                "sharded sustained {:.0}/h below single-queue {:.0}/h",
                self.sharded.sustained_per_hour, self.single.sustained_per_hour
            ));
        }
        let floor = self.params.throughput_floor;
        if floor > 0.0 {
            if self.sharded.sustained_per_hour < floor {
                return Err(format!(
                    "sharded sustained {:.0}/h misses the {floor:.0}/h floor",
                    self.sharded.sustained_per_hour
                ));
            }
            if self.single.sustained_per_hour >= floor {
                return Err(format!(
                    "single-queue sustained {:.0}/h did not saturate below {floor:.0}/h",
                    self.single.sustained_per_hour
                ));
            }
        }
        Ok(())
    }
}

/// Run the benchmark: one workload, two planner configurations, one
/// per-lane report.
pub fn run_shard_bench(params: &ShardBenchParams) -> ShardBenchReport {
    let wl = params.workload_params();
    let w = WorkloadBuilder::new(wl.clone())
        .seed(params.seed)
        .n_changes(params.n_changes())
        .build()
        .expect("valid cell parameters");
    let history = WorkloadBuilder::new(wl)
        .seed(params.seed ^ HISTORY_SALT)
        .n_changes(params.history_changes)
        .build()
        .expect("valid history parameters");
    let strategy = Strategy::build(StrategyKind::SubmitQueue, &w, Some(&history));
    let cost = params.planning_cost();

    let single_cfg = PlannerConfig {
        workers: params.total_workers,
        planning_cost: Some(cost),
        ..PlannerConfig::default()
    };
    let plan = ShardPlan::round_robin(params.n_parts, params.n_shards);
    let spec = ShardSpec::proportional(plan.clone(), &w, params.total_workers);
    let lane_workers = spec.lane_workers.clone();
    let sharded_cfg = PlannerConfig {
        shards: Some(spec),
        planning_cost: Some(cost),
        ..PlannerConfig::default()
    };

    let r_single = run_simulation(&w, &strategy, &single_cfg);
    let r_sharded = run_simulation(&w, &strategy, &sharded_cfg);

    let report = ShardReport::from_result(&w, &r_sharded, &plan);
    let lanes = report
        .lanes
        .iter()
        .map(|l| LaneCell {
            name: l.name.clone(),
            workers: lane_workers[l.lane] as u64,
            routed: l.routed as u64,
            committed: l.committed as u64,
            rejected: l.rejected as u64,
            wrongful: l.wrongful as u64,
        })
        .collect();

    ShardBenchReport {
        params: params.clone(),
        single: QueueCell::from_result("single-queue", &w, &r_single),
        sharded: QueueCell::from_result("sharded", &w, &r_sharded),
        lanes,
    }
}

/// Required keys of each configuration section.
const CELL_KEYS: &[&str] = &[
    "changes",
    "resolved",
    "commits",
    "rejects",
    "green",
    "rejections_justified",
    "wrongful_rejections",
    "sustained_per_hour",
    "throughput_per_hour",
    "turnaround_mins",
    "builds_started",
    "builds_aborted",
    "makespan_hours",
];

/// Required keys of each lane entry.
const LANE_KEYS: &[&str] = &[
    "name",
    "workers",
    "routed",
    "committed",
    "rejected",
    "wrongful",
];

/// Validate a benchmark document: schema, complete parameters and
/// sections, and the hard invariants (green, zero wrongful rejections
/// everywhere). Returns the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    use serde::__private::Value;
    let value: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Map(entries) = value else {
        return Err("top level is not an object".to_string());
    };
    let field = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match field("schema") {
        Some(Value::Str(s)) if s == "sq-bench-shard/v1" => {}
        _ => return Err("missing or unexpected schema".to_string()),
    }
    let Some(Value::Map(params)) = field("params") else {
        return Err("\"params\" is not an object".to_string());
    };
    for key in [
        "seed",
        "rate_per_hour",
        "hours",
        "n_changes",
        "n_parts",
        "n_shards",
        "total_workers",
        "planning_base_ms",
        "planning_per_pending_ms",
        "history_changes",
        "throughput_floor",
    ] {
        if !params.iter().any(|(k, _)| k == key) {
            return Err(format!("missing key params.{key}"));
        }
    }
    for section in ["single-queue", "sharded"] {
        let Some(Value::Map(m)) = field(section) else {
            return Err(format!("\"{section}\" is not an object"));
        };
        for key in CELL_KEYS {
            if !m.iter().any(|(k, _)| k == key) {
                return Err(format!("missing key {section}.{key}"));
            }
        }
        match m.iter().find(|(k, _)| k == "green") {
            Some((_, Value::Bool(true))) => {}
            _ => return Err(format!("{section} is not always-green")),
        }
        match m.iter().find(|(k, _)| k == "wrongful_rejections") {
            Some((_, Value::U64(0))) => {}
            _ => return Err(format!("{section} has wrongful rejections")),
        }
    }
    let Some(Value::Seq(lanes)) = field("lanes") else {
        return Err("\"lanes\" is not an array".to_string());
    };
    if lanes.is_empty() {
        return Err("no lanes recorded".to_string());
    }
    for (i, lane) in lanes.iter().enumerate() {
        let Value::Map(m) = lane else {
            return Err(format!("lanes[{i}] is not an object"));
        };
        for key in LANE_KEYS {
            if !m.iter().any(|(k, _)| k == key) {
                return Err(format!("missing key lanes[{i}].{key}"));
            }
        }
        match m.iter().find(|(k, _)| k == "wrongful") {
            Some((_, Value::U64(0))) => {}
            _ => return Err(format!("lanes[{i}] has wrongful rejections")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShardBenchParams {
        ShardBenchParams {
            seed: 7,
            rate_per_hour: 600.0,
            hours: 0.2,
            n_parts: 64,
            n_shards: 4,
            total_workers: 80,
            planning_base_ms: 1_000,
            planning_per_pending_ms: 2_000,
            history_changes: 200,
            throughput_floor: 0.0,
        }
    }

    #[test]
    fn tiny_run_is_deterministic_and_passes_the_gate() {
        let a = run_shard_bench(&tiny());
        a.smoke_gate().expect("gate holds");
        validate(&a.to_json()).expect("document is valid");
        let b = run_shard_bench(&tiny());
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "committed document must be byte-reproducible"
        );
        assert_eq!(a.sharded.resolved, a.sharded.changes);
        assert_eq!(a.lanes.len(), tiny().n_shards + 1);
    }

    #[test]
    fn validate_flags_malformed_documents() {
        assert!(validate("nope").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        assert!(validate(r#"{"schema":"sq-bench-shard/v1"}"#)
            .unwrap_err()
            .contains("params"));
    }
}
