//! # sq-bench — figure regeneration harness
//!
//! One binary per figure of the paper's evaluation (Section 8) plus the
//! Section 2 motivation curves and the Section 7.2 model report:
//!
//! | binary              | paper figure/claim                                  |
//! |---------------------|-----------------------------------------------------|
//! | `fig01`             | P(real conflict) vs concurrent conflicting changes  |
//! | `fig02`             | P(breakage) vs change staleness                     |
//! | `fig05_08`          | speculation trees/graphs + Fig. 8 counterexample    |
//! | `fig09`             | CDF of build durations                              |
//! | `fig10`             | CDF of Oracle turnaround at 100..500 changes/h      |
//! | `fig11`             | P50/P95/P99 turnaround grids normalized vs Oracle   |
//! | `fig12`             | normalized average throughput                       |
//! | `fig13`             | P95 turnaround improvement from conflict analyzer   |
//! | `fig14`             | mainline green rate before SubmitQueue              |
//! | `model_eval`        | §7.2: accuracy, top features, RFE                   |
//! | `graph_change_rate` | §5.2: fraction of changes altering the build graph  |
//! | `bench_e2e`         | machine-readable end-to-end JSON (`BENCH_e2e.json`) |
//! | `bench_conflict`    | §5.2 conflict index: serial vs indexed vs parallel  |
//! | `bench_scenarios`   | adversarial scenario matrix (`BENCH_scenarios.json`)|
//! | `bench_replication` | WAL shipping + failover (`BENCH_replication.json`)  |
//! | `bench_server`      | live-socket serving layer (`BENCH_server.json`)     |
//! | `bench_shard`       | sharded vs single-queue planner (`BENCH_shard.json`)|
//! | `bench_lean`        | lean-speculation ablation matrix (`BENCH_lean.json`)|
//!
//! Every binary prints the series to stdout and writes a CSV to
//! `target/figures/`. Environment knobs: `SQ_BENCH_HOURS` (simulated
//! arrival hours per cell, default 3), `SQ_BENCH_SEED`, `SQ_BENCH_QUICK=1`
//! (shrink grids for smoke runs), `SQ_BENCH_RATES`/`SQ_BENCH_WORKERS`
//! (comma-separated axis overrides, e.g. `SQ_BENCH_RATES=300` for one
//! paper panel).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod e2e;
pub mod lean;
pub mod replication;
pub mod scenarios;
pub mod server;
pub mod shard;

use sq_core::planner::{run_simulation, PlannerConfig, SimResult};
use sq_core::predict::LearnedPredictor;
use sq_core::strategy::{Strategy, StrategyKind};
use sq_workload::{Workload, WorkloadBuilder, WorkloadParams};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Simulated hours of arrivals per grid cell.
pub fn bench_hours() -> f64 {
    if quick() {
        1.0
    } else {
        std::env::var("SQ_BENCH_HOURS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3.0)
    }
}

/// Master seed for all workloads.
pub fn bench_seed() -> u64 {
    std::env::var("SQ_BENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED)
}

/// Quick-mode flag for smoke runs.
pub fn quick() -> bool {
    std::env::var("SQ_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// The rate axis of the paper's grids (changes/hour). Override with a
/// comma-separated `SQ_BENCH_RATES` (e.g. `SQ_BENCH_RATES=300` to run a
/// single paper panel).
pub fn rates() -> Vec<f64> {
    if let Ok(raw) = std::env::var("SQ_BENCH_RATES") {
        let parsed: Vec<f64> = raw
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&r| r > 0.0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    if quick() {
        vec![100.0, 300.0]
    } else {
        vec![100.0, 200.0, 300.0, 400.0, 500.0]
    }
}

/// The worker axis of the paper's grids. Override with a comma-separated
/// `SQ_BENCH_WORKERS`.
pub fn worker_counts() -> Vec<usize> {
    if let Ok(raw) = std::env::var("SQ_BENCH_WORKERS") {
        let parsed: Vec<usize> = raw
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&w| w > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    if quick() {
        vec![100, 300]
    } else {
        vec![100, 200, 300, 400, 500]
    }
}

/// Where figure CSVs land.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env_target_dir()).join("figures");
    fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

fn env_target_dir() -> String {
    std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string())
}

/// Write a CSV (plus announce the path on stdout).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = figures_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    println!("\n[csv] {}", path.display());
}

/// Build the controlled-replay workload for a given ingestion rate
/// (Section 8.1: same changes, different rates).
pub fn workload_at_rate(rate: f64) -> Workload {
    WorkloadBuilder::new(WorkloadParams::ios().with_rate(rate))
        .seed(bench_seed())
        .duration_hours(bench_hours())
        .build()
        .expect("valid workload params")
}

/// The training history for SubmitQueue's models (disjoint seed).
pub fn training_history() -> Workload {
    let n = if quick() { 3_000 } else { 10_000 };
    WorkloadBuilder::new(WorkloadParams::ios())
        .seed(bench_seed() ^ 0xA11CE)
        .n_changes(n)
        .build()
        .expect("valid workload params")
}

/// Train the SubmitQueue predictor once for the whole grid.
pub fn trained_predictor() -> LearnedPredictor {
    let history = training_history();
    let (p, _) = LearnedPredictor::train(&history, bench_seed());
    p
}

/// Skip threshold shared by grid cells that reuse [`trained_predictor`]:
/// calibrated once against the same training history.
pub fn calibrated_skip_threshold(predictor: &LearnedPredictor) -> f64 {
    predictor.calibrate_skip_threshold(&training_history(), sq_core::SKIP_MISS_BUDGET)
}

/// Instantiate a strategy for a workload, reusing a trained predictor
/// (the lean kinds calibrate their skip threshold against the shared
/// training history).
pub fn strategy_for(
    kind: StrategyKind,
    workload: &Workload,
    predictor: &LearnedPredictor,
) -> Strategy {
    match kind {
        StrategyKind::SubmitQueue => Strategy::submit_queue_with(predictor.clone()),
        _ => match kind.lean_config(calibrated_skip_threshold(predictor)) {
            Some(cfg) => Strategy::lean_with(predictor.clone(), cfg),
            None => Strategy::build(kind, workload, None),
        },
    }
}

/// Run one grid cell.
pub fn run_cell(
    workload: &Workload,
    strategy: &Strategy,
    workers: usize,
    conflict_analyzer: bool,
) -> SimResult {
    let config = PlannerConfig {
        workers,
        conflict_analyzer,
        ..PlannerConfig::default()
    };
    run_simulation(workload, strategy, &config)
}

/// Render a rate × workers matrix the way the paper's heatmaps read:
/// rows = changes/hour (descending), columns = workers (ascending).
pub fn print_matrix(
    title: &str,
    rates: &[f64],
    workers: &[usize],
    cell: impl Fn(f64, usize) -> f64,
) {
    println!("\n=== {title} ===");
    print!("{:>14} |", "#changes/hour");
    for &w in workers {
        print!(" {w:>8}");
    }
    println!("  (workers)");
    println!("{}", "-".repeat(16 + 9 * workers.len()));
    for &r in rates.iter().rev() {
        print!("{r:>14.0} |",);
        for &w in workers {
            print!(" {:>8.2}", cell(r, w));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_have_sane_defaults() {
        assert!(bench_hours() > 0.0);
        assert!(!rates().is_empty());
        assert!(!worker_counts().is_empty());
    }

    #[test]
    fn workload_rate_is_respected() {
        let w = workload_at_rate(200.0);
        assert!(!w.changes.is_empty());
        assert!((w.params.changes_per_hour - 200.0).abs() < 1e-9);
    }

    #[test]
    fn run_cell_smoke() {
        let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(100.0))
            .seed(1)
            .n_changes(30)
            .build()
            .unwrap();
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let r = run_cell(&w, &strategy, 50, true);
        assert_eq!(r.records.len(), 30);
    }
}
