//! The WAL-shipping replication benchmark behind `bench_replication`.
//!
//! Two measurements over the same seeded workload:
//!
//! * **Throughput cells** — a replicated [`DurableSubmitQueue`] (a
//!   leader and N synchronous followers) lands the whole workload, for every
//!   `(ack mode, follower count)` combination. The deterministic
//!   counters (ships, shipped records/bytes, journal appends, epoch)
//!   go into the committed document; wall time goes into a separate
//!   timing document, so the committed file is byte-reproducible.
//! * **Failover cells** — per ack mode, the leader's medium is killed
//!   mid-run by a seeded crash plan after a fixed number of landed
//!   changes. The harness promotes the best surviving replica
//!   ([`best_promotion_candidate`] + [`promote_from_follower`]), rejoins
//!   the deposed medium, and finishes the workload. The cell records
//!   the promotion report and whether the final exported state is
//!   byte-identical to an uncrashed twin — the zero-loss gate that
//!   `--smoke` enforces in CI.

use sq_core::durable::DurableSubmitQueue;
use sq_core::failover::{best_promotion_candidate, open_leader, promote_from_follower};
use sq_core::service::{StepAction, TicketId};
use sq_core::RecoveryConfig;
use sq_exec::StepOutcome;
use sq_obs::JsonWriter;
use sq_store::{
    AckMode, CrashKind, CrashPlan, DurableStoreConfig, Leader, MemStorage, ReplicationConfig,
};
use sq_workload::repo_model::MaterializedRepo;
use sq_workload::{WorkloadBuilder, WorkloadParams};
use std::sync::{Arc, Mutex};
use std::time::Instant;

type Shared = Arc<Mutex<MemStorage>>;
type ReplQueue = DurableSubmitQueue<Leader<Shared>>;

/// Parameters of one replication-benchmark run.
#[derive(Debug, Clone)]
pub struct ReplicationParams {
    /// Master seed for the workload and repository.
    pub seed: u64,
    /// Logical parts (= packages) in the materialized repo.
    pub n_parts: usize,
    /// Changes landed per cell.
    pub n_changes: usize,
    /// Follower counts to measure throughput at.
    pub follower_counts: Vec<usize>,
    /// Changes fully landed before the seeded leader kill in the
    /// failover cells.
    pub kill_after: usize,
    /// Snapshot cadence of every replica's store.
    pub snapshot_every: u64,
}

impl ReplicationParams {
    /// The recorded configuration (what `bench_replication` runs by
    /// default and what `BENCH_replication.json` at the repo root
    /// reports).
    pub fn standard() -> Self {
        ReplicationParams {
            seed: crate::bench_seed(),
            n_parts: 32,
            n_changes: 24,
            follower_counts: vec![1, 2, 3],
            kill_after: 8,
            snapshot_every: 8,
        }
    }

    /// A small configuration for CI smoke runs.
    pub fn smoke() -> Self {
        ReplicationParams {
            seed: crate::bench_seed(),
            n_parts: 16,
            n_changes: 10,
            follower_counts: vec![1, 2],
            kill_after: 4,
            snapshot_every: 4,
        }
    }
}

/// Deterministic counters from one `(mode, followers)` throughput cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Ack mode the cell ran under.
    pub mode: AckMode,
    /// Attached followers.
    pub followers: usize,
    /// Changes submitted (all acked).
    pub changes: u64,
    /// Changes that landed on the mainline.
    pub landed: u64,
    /// Mainline commits including the root.
    pub commits: u64,
    /// Fencing epoch at the end of the run (1: no failover happened).
    pub epoch: u64,
    /// Per-link ship frames sent.
    pub ships: u64,
    /// Journal records shipped across all links.
    pub shipped_records: u64,
    /// Encoded ship-frame bytes across all links.
    pub shipped_bytes: u64,
    /// Leader-local journal appends.
    pub journal_appends: u64,
    /// Appends acked below quorum (must be 0 with healthy followers).
    pub degraded_acks: u64,
    /// Wall time of the submit+land loop, in nanoseconds (timing
    /// document only — excluded from the committed JSON).
    pub elapsed_nanos: u64,
}

/// One seeded leader-kill + promotion measurement.
#[derive(Debug, Clone)]
pub struct FailoverResult {
    /// Ack mode the cell ran under.
    pub mode: AckMode,
    /// Attached followers.
    pub followers: usize,
    /// Changes fully landed before the kill was armed.
    pub kill_after: u64,
    /// Observed leader deaths (exactly one is armed).
    pub crashes: u64,
    /// Epoch claimed by the promotion.
    pub epoch: u64,
    /// Durable LSN the promoted replica served from.
    pub durable_lsn: u64,
    /// Journal records replayed during promotion.
    pub replayed_records: u64,
    /// Torn-tail bytes the promoted replica had to repair (followers
    /// never crash here, so this must be 0).
    pub truncated_bytes: u64,
    /// Changes that landed across the whole run, failover included.
    pub landed: u64,
    /// Whether the final exported state is byte-identical to the
    /// uncrashed twin's — the zero-loss gate.
    pub export_identical: bool,
    /// Wall time of candidate selection + promotion, in nanoseconds
    /// (timing document only).
    pub promote_nanos: u64,
}

/// A full benchmark report: parameters, throughput cells, failover cells.
#[derive(Debug, Clone)]
pub struct ReplicationReport {
    /// The parameters the run used.
    pub params: ReplicationParams,
    /// One entry per `(mode, followers)` combination.
    pub cells: Vec<CellResult>,
    /// One seeded failover per ack mode.
    pub failover: Vec<FailoverResult>,
}

fn mode_name(mode: AckMode) -> &'static str {
    match mode {
        AckMode::Async => "async",
        AckMode::Quorum => "quorum",
    }
}

impl ReplicationReport {
    /// Render the committed machine-readable document. Every field is
    /// deterministic for a given seed — wall-clock numbers live in
    /// [`Self::to_timing_json`] — so reruns are byte-identical.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "sq-bench-replication/v1");
        w.key("params");
        w.begin_object();
        w.field_u64("seed", self.params.seed);
        w.field_u64("n_parts", self.params.n_parts as u64);
        w.field_u64("n_changes", self.params.n_changes as u64);
        w.field_u64("kill_after", self.params.kill_after as u64);
        w.field_u64("snapshot_every", self.params.snapshot_every);
        w.end_object();
        w.key("cells");
        w.begin_array();
        for c in &self.cells {
            w.begin_object();
            w.field_str("mode", mode_name(c.mode));
            w.field_u64("followers", c.followers as u64);
            w.field_u64("changes", c.changes);
            w.field_u64("landed", c.landed);
            w.field_u64("commits", c.commits);
            w.field_u64("epoch", c.epoch);
            w.field_u64("ships", c.ships);
            w.field_u64("shipped_records", c.shipped_records);
            w.field_u64("shipped_bytes", c.shipped_bytes);
            w.field_u64("journal_appends", c.journal_appends);
            w.field_u64("degraded_acks", c.degraded_acks);
            w.end_object();
        }
        w.end_array();
        w.key("failover");
        w.begin_array();
        for f in &self.failover {
            w.begin_object();
            w.field_str("mode", mode_name(f.mode));
            w.field_u64("followers", f.followers as u64);
            w.field_u64("kill_after", f.kill_after);
            w.field_u64("crashes", f.crashes);
            w.field_u64("epoch", f.epoch);
            w.field_u64("durable_lsn", f.durable_lsn);
            w.field_u64("replayed_records", f.replayed_records);
            w.field_u64("truncated_bytes", f.truncated_bytes);
            w.field_u64("landed", f.landed);
            w.key("export_identical");
            w.value_bool(f.export_identical);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Render the wall-clock companion document (not committed: timing
    /// is inherently non-reproducible).
    pub fn to_timing_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "sq-bench-replication-timing/v1");
        w.key("cells");
        w.begin_array();
        for c in &self.cells {
            w.begin_object();
            w.field_str("mode", mode_name(c.mode));
            w.field_u64("followers", c.followers as u64);
            w.field_f64("elapsed_ms", c.elapsed_nanos as f64 / 1e6);
            w.field_f64(
                "changes_per_sec",
                c.changes as f64 / (c.elapsed_nanos.max(1) as f64 / 1e9),
            );
            w.end_object();
        }
        w.end_array();
        w.key("failover");
        w.begin_array();
        for f in &self.failover {
            w.begin_object();
            w.field_str("mode", mode_name(f.mode));
            w.field_u64("followers", f.followers as u64);
            w.field_f64("promote_ms", f.promote_nanos as f64 / 1e6);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// The CI gate: every failover cell must have reproduced the
    /// uncrashed twin's state byte-identically with a clean promoted
    /// tail, every throughput cell must have acked everything at full
    /// quorum, and the chaos must actually have fired.
    pub fn smoke_gate(&self) -> Result<(), String> {
        if self.cells.is_empty() || self.failover.is_empty() {
            return Err("no cells measured".to_string());
        }
        for c in &self.cells {
            if c.degraded_acks != 0 {
                return Err(format!(
                    "cell {}x{}: {} degraded acks with healthy followers",
                    mode_name(c.mode),
                    c.followers,
                    c.degraded_acks
                ));
            }
            if c.changes != c.landed {
                return Err(format!(
                    "cell {}x{}: {} of {} changes landed",
                    mode_name(c.mode),
                    c.followers,
                    c.landed,
                    c.changes
                ));
            }
        }
        for f in &self.failover {
            if f.crashes == 0 {
                return Err(format!(
                    "failover {}: the seeded leader kill never fired",
                    mode_name(f.mode)
                ));
            }
            if f.truncated_bytes != 0 {
                return Err(format!(
                    "failover {}: promoted replica repaired {} torn bytes",
                    mode_name(f.mode),
                    f.truncated_bytes
                ));
            }
            if !f.export_identical {
                return Err(format!(
                    "failover {}: state diverged from the uncrashed twin",
                    mode_name(f.mode)
                ));
            }
        }
        Ok(())
    }
}

fn store_cfg(params: &ReplicationParams) -> DurableStoreConfig {
    DurableStoreConfig::with_snapshot_every(params.snapshot_every)
}

fn always_pass() -> Box<StepAction> {
    Box::new(|_step, _tree| StepOutcome::Success)
}

struct Cluster {
    dq: ReplQueue,
    leader: Shared,
    followers: Vec<Shared>,
}

fn open_cluster(
    repo: sq_vcs::Repository,
    params: &ReplicationParams,
    mode: AckMode,
    followers: usize,
) -> Cluster {
    let leader: Shared = Arc::new(Mutex::new(MemStorage::with_crashes(CrashPlan::none())));
    let dq = open_leader(
        repo,
        3,
        RecoveryConfig::disabled(),
        leader.clone(),
        store_cfg(params),
        ReplicationConfig::with_ack_mode(mode),
    )
    .expect("open replicated leader");
    let followers: Vec<Shared> = (0..followers)
        .map(|_| {
            let s: Shared = Arc::new(Mutex::new(MemStorage::with_crashes(CrashPlan::none())));
            dq.attach_follower(s.clone(), store_cfg(params))
                .expect("attach follower");
            s
        })
        .collect();
    Cluster {
        dq,
        leader,
        followers,
    }
}

fn workload(params: &ReplicationParams) -> (MaterializedRepo, sq_workload::Workload) {
    let mut wl = WorkloadParams::ios();
    wl.n_parts = params.n_parts;
    let m = MaterializedRepo::generate(&wl).expect("valid repo params");
    let w = WorkloadBuilder::new(wl)
        .seed(params.seed)
        .n_changes(params.n_changes)
        .build()
        .expect("valid workload params");
    (m, w)
}

/// One healthy throughput cell; also returns the final exported state
/// (the failover cells compare against it).
fn run_cell(params: &ReplicationParams, mode: AckMode, followers: usize) -> (CellResult, String) {
    let (m, w) = workload(params);
    let Cluster { dq, .. } = open_cluster(m.repo.clone(), params, mode, followers);
    let action = always_pass();
    let start = Instant::now();
    for c in &w.changes {
        dq.submit(
            format!("dev{}", c.developer.0),
            format!("change {}", c.id),
            dq.head(),
            m.patch_for(c),
        )
        .expect("healthy submit");
        dq.run_until_idle(&action).expect("healthy drain");
    }
    let elapsed_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let stats = dq.replication_stats();
    let st = dq.store_stats();
    let repo = dq.repository();
    let cell = CellResult {
        mode,
        followers,
        changes: w.changes.len() as u64,
        landed: dq.service().stats().landed,
        commits: repo.log(repo.head()).expect("mainline log").len() as u64,
        epoch: dq.epoch(),
        ships: stats.ships,
        shipped_records: stats.shipped_records,
        shipped_bytes: stats.shipped_bytes,
        journal_appends: st.appends,
        degraded_acks: stats.degraded_acks,
        elapsed_nanos,
    };
    (cell, dq.export_state_json())
}

/// One seeded leader-kill cell: land `kill_after` changes, arm a crash
/// on the leader's next mutating storage op, fail over on the death,
/// finish the workload on the promoted replica, and compare against the
/// uncrashed twin's export.
fn run_failover(params: &ReplicationParams, mode: AckMode, clean_export: &str) -> FailoverResult {
    let followers_n = params.follower_counts.iter().copied().max().unwrap_or(2);
    let (m, w) = workload(params);
    let Cluster {
        mut dq,
        leader,
        followers,
    } = open_cluster(m.repo.clone(), params, mode, followers_n);
    let action = always_pass();
    let mut crashes = 0u64;
    let mut report = None;
    let mut promote_nanos = 0u64;

    for (i, c) in w.changes.iter().enumerate() {
        if i == params.kill_after {
            // Arm the death: the leader's next mutating op tears.
            let ops = leader.lock().unwrap().ops();
            leader
                .lock()
                .unwrap()
                .set_plan(CrashPlan::at_op(ops, CrashKind::Torn));
        }
        let expected = i as u64 + 1;
        loop {
            match dq.submit(
                format!("dev{}", c.developer.0),
                format!("change {}", c.id),
                dq.head(),
                m.patch_for(c),
            ) {
                Ok(t) => {
                    assert_eq!(t, TicketId(expected), "ticket assignment diverged");
                    break;
                }
                Err(_) => {
                    crashes += 1;
                    let (next, r, nanos) = fail_over(dq, &leader, &followers, params, mode);
                    dq = next;
                    report = Some(r);
                    promote_nanos = nanos;
                    if dq.status(TicketId(expected)).is_some() {
                        break;
                    }
                }
            }
        }
        loop {
            match dq.process_next(&action) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    crashes += 1;
                    let (next, r, nanos) = fail_over(dq, &leader, &followers, params, mode);
                    dq = next;
                    report = Some(r);
                    promote_nanos = nanos;
                }
            }
        }
    }
    let report = report.expect("the armed kill fired and forced a promotion");
    FailoverResult {
        mode,
        followers: followers_n,
        kill_after: params.kill_after as u64,
        crashes,
        epoch: report.epoch,
        durable_lsn: report.durable_lsn,
        replayed_records: report.replayed_records,
        truncated_bytes: report.truncated_bytes,
        landed: dq.service().stats().landed,
        export_identical: dq.export_state_json() == clean_export,
        promote_nanos,
    }
}

/// Fenced failover: promote the best surviving follower, then rebuild
/// the cluster around it (revived deposed medium included).
fn fail_over(
    dead: ReplQueue,
    dead_leader: &Shared,
    followers: &[Shared],
    params: &ReplicationParams,
    mode: AckMode,
) -> (ReplQueue, sq_core::failover::PromotionReport, u64) {
    let repo = dead.repository();
    let dead_epoch = dead.epoch();
    drop(dead);
    let start = Instant::now();
    let candidate = best_promotion_candidate(
        followers,
        &store_cfg(params),
        &ReplicationConfig::with_ack_mode(mode),
    )
    .expect("surviving replicas are readable");
    let (dq, report) = promote_from_follower(
        repo,
        3,
        RecoveryConfig::disabled(),
        followers[candidate.index].clone(),
        store_cfg(params),
        ReplicationConfig::with_ack_mode(mode),
        candidate.cluster_epoch.max(dead_epoch),
    )
    .expect("promotion from best candidate");
    let promote_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    for (i, s) in followers.iter().enumerate() {
        if i != candidate.index {
            dq.attach_follower(s.clone(), store_cfg(params))
                .expect("reattach survivor");
        }
    }
    dead_leader.lock().unwrap().revive();
    dead_leader.lock().unwrap().set_plan(CrashPlan::none());
    dq.attach_follower(dead_leader.clone(), store_cfg(params))
        .expect("reattach deposed leader");
    (dq, report, promote_nanos)
}

/// Run the full benchmark: every `(mode, followers)` throughput cell,
/// then one seeded failover per ack mode at the largest follower count.
pub fn run_replication(params: &ReplicationParams) -> ReplicationReport {
    let mut cells = Vec::new();
    let mut failover = Vec::new();
    for mode in [AckMode::Async, AckMode::Quorum] {
        let mut twin_export = None;
        let max_followers = params.follower_counts.iter().copied().max().unwrap_or(2);
        for &f in &params.follower_counts {
            let (cell, export) = run_cell(params, mode, f);
            if f == max_followers {
                twin_export = Some(export);
            }
            cells.push(cell);
        }
        let twin = twin_export.expect("at least one follower count");
        failover.push(run_failover(params, mode, &twin));
    }
    ReplicationReport {
        params: params.clone(),
        cells,
        failover,
    }
}

/// Required keys of each entry under `"cells"`.
const CELL_KEYS: &[&str] = &[
    "mode",
    "followers",
    "changes",
    "landed",
    "commits",
    "epoch",
    "ships",
    "shipped_records",
    "shipped_bytes",
    "journal_appends",
    "degraded_acks",
];

/// Required keys of each entry under `"failover"`.
const FAILOVER_KEYS: &[&str] = &[
    "mode",
    "followers",
    "kill_after",
    "crashes",
    "epoch",
    "durable_lsn",
    "replayed_records",
    "truncated_bytes",
    "landed",
    "export_identical",
];

/// Validate a benchmark document: it must parse as JSON, carry the
/// schema and parameters, every cell and failover entry must be
/// complete, and every failover must report `export_identical` true.
/// Returns the first problem found.
pub fn validate(json: &str) -> Result<(), String> {
    use serde::__private::Value;
    let value: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Map(entries) = value else {
        return Err("top level is not an object".to_string());
    };
    let field = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match field("schema") {
        Some(Value::Str(s)) if s == "sq-bench-replication/v1" => {}
        _ => return Err("missing or unexpected schema".to_string()),
    }
    let Some(Value::Map(params)) = field("params") else {
        return Err("\"params\" is not an object".to_string());
    };
    for key in [
        "seed",
        "n_parts",
        "n_changes",
        "kill_after",
        "snapshot_every",
    ] {
        if !params.iter().any(|(k, _)| k == key) {
            return Err(format!("missing key params.{key}"));
        }
    }
    for (section, keys) in [("cells", CELL_KEYS), ("failover", FAILOVER_KEYS)] {
        let Some(Value::Seq(items)) = field(section) else {
            return Err(format!("\"{section}\" is not an array"));
        };
        if items.is_empty() {
            return Err(format!("no {section} measured"));
        }
        for (i, item) in items.iter().enumerate() {
            let Value::Map(m) = item else {
                return Err(format!("{section}[{i}] is not an object"));
            };
            for key in keys {
                if !m.iter().any(|(k, _)| k == key) {
                    return Err(format!("missing key {section}[{i}].{key}"));
                }
            }
            if section == "failover" {
                match m.iter().find(|(k, _)| k == "export_identical") {
                    Some((_, Value::Bool(true))) => {}
                    _ => {
                        return Err(format!(
                            "failover[{i}]: state diverged from the uncrashed twin"
                        ))
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReplicationParams {
        ReplicationParams {
            seed: 7,
            n_parts: 8,
            n_changes: 6,
            follower_counts: vec![1, 2],
            kill_after: 2,
            snapshot_every: 4,
        }
    }

    #[test]
    fn tiny_run_is_deterministic_and_passes_the_gate() {
        let a = run_replication(&tiny());
        a.smoke_gate().expect("gate holds");
        validate(&a.to_json()).expect("document is valid");
        let b = run_replication(&tiny());
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "committed document must be byte-reproducible"
        );
        for f in &a.failover {
            assert!(f.crashes >= 1);
            assert!(f.epoch >= 2, "promotion must bump the epoch");
            assert!(f.export_identical);
        }
    }

    #[test]
    fn validate_flags_malformed_documents() {
        assert!(validate("nope").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        assert!(validate(r#"{"schema":"sq-bench-replication/v1"}"#)
            .unwrap_err()
            .contains("params"));
        let no_cells = r#"{"schema":"sq-bench-replication/v1",
            "params":{"seed":1,"n_parts":8,"n_changes":4,"kill_after":2,"snapshot_every":4},
            "cells":[],"failover":[]}"#;
        assert!(validate(no_cells).unwrap_err().contains("no cells"));
        let diverged = r#"{"schema":"sq-bench-replication/v1",
            "params":{"seed":1,"n_parts":8,"n_changes":4,"kill_after":2,"snapshot_every":4},
            "cells":[{"mode":"async","followers":1,"changes":4,"landed":4,"commits":5,
                      "epoch":1,"ships":12,"shipped_records":12,"shipped_bytes":600,
                      "journal_appends":12,"degraded_acks":0}],
            "failover":[{"mode":"async","followers":2,"kill_after":2,"crashes":1,
                         "epoch":2,"durable_lsn":9,"replayed_records":9,
                         "truncated_bytes":0,"landed":4,"export_identical":false}]}"#;
        assert!(validate(diverged).unwrap_err().contains("diverged"));
    }
}
