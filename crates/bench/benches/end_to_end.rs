//! End-to-end microbenchmarks: one full planner simulation per strategy
//! (small scale), plus logistic-regression training — the offline cost
//! the paper pays per model refresh.

use criterion::{criterion_group, criterion_main, Criterion};
use sq_core::planner::{run_simulation, PlannerConfig};
use sq_core::predict::LearnedPredictor;
use sq_core::strategy::{Strategy, StrategyKind};
use sq_workload::{WorkloadBuilder, WorkloadParams};

fn bench_planner(c: &mut Criterion) {
    let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(200.0))
        .seed(3)
        .n_changes(100)
        .build()
        .expect("valid params");
    let config = PlannerConfig {
        workers: 100,
        ..PlannerConfig::default()
    };
    let mut group = c.benchmark_group("planner_simulation_100_changes");
    group.sample_size(20);
    for kind in [
        StrategyKind::Oracle,
        StrategyKind::SpeculateAll,
        StrategyKind::Optimistic,
        StrategyKind::SingleQueue,
    ] {
        let strategy = Strategy::build(kind, &w, None);
        group.bench_function(kind.name(), |b| {
            b.iter(|| run_simulation(&w, &strategy, &config));
        });
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let history = WorkloadBuilder::new(WorkloadParams::ios())
        .seed(5)
        .n_changes(3000)
        .build()
        .expect("valid params");
    let mut group = c.benchmark_group("model_training_3000_changes");
    group.sample_size(10);
    group.bench_function("logistic_train_success_and_conflict", |b| {
        b.iter(|| LearnedPredictor::train(&history, 11));
    });
    group.finish();
}

criterion_group!(benches, bench_planner, bench_training);
criterion_main!(benches);
