//! Microbenchmarks for the Section 5 conflict-analysis pipeline: target
//! hashing (Algorithm 1), the Equation 6 oracle, and the union-graph
//! algorithm — the paper's point is that union-graph needs n graph
//! builds instead of n², so its per-pair cost must stay low.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sq_build::affected::SnapshotAnalysis;
use sq_build::conflict::{eq6_conflict, union_graph_conflict};
use sq_build::TargetHashes;
use sq_vcs::{ObjectStore, Patch, RepoPath, Tree};
use sq_workload::repo_model::MaterializedRepo;
use sq_workload::WorkloadParams;

fn repo_of_size(n_parts: usize) -> (Tree, ObjectStore) {
    let mut params = WorkloadParams::ios();
    params.n_parts = n_parts;
    let m = MaterializedRepo::generate(&params).expect("repo generates");
    let tree = m.repo.head_tree().expect("head tree");
    (tree, m.repo.store().clone())
}

fn bench_target_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_target_hashing");
    for &n in &[50usize, 200, 800] {
        let (tree, store) = repo_of_size(n);
        let graph = sq_build::parse_workspace(&tree, &store).expect("parses");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| TargetHashes::compute(&graph, &tree, &store).expect("hashes"));
        });
    }
    group.finish();
}

fn bench_conflict_detectors(c: &mut Criterion) {
    let (tree, mut store) = repo_of_size(200);
    let base = SnapshotAnalysis::analyze(&tree, &store).expect("analyzable");
    let p = |s: &str| RepoPath::new(s).expect("valid");
    let c1 = Patch::write(p("parts/p0000/src_0.rs"), "edit-1");
    let c2 = Patch::write(p("parts/p0100/src_1.rs"), "edit-2");
    let t1 = c1.apply(&tree, &mut store).expect("applies");
    let t2 = c2.apply(&tree, &mut store).expect("applies");
    let t12 = c1.compose(&c2).apply(&tree, &mut store).expect("applies");
    let a1 = SnapshotAnalysis::analyze(&t1, &store).expect("analyzable");
    let a2 = SnapshotAnalysis::analyze(&t2, &store).expect("analyzable");
    let a12 = SnapshotAnalysis::analyze(&t12, &store).expect("analyzable");

    let mut group = c.benchmark_group("conflict_detection_200_targets");
    group.bench_function("eq6_oracle", |b| {
        b.iter(|| eq6_conflict(&base, &a1, &a2, &a12));
    });
    group.bench_function("union_graph", |b| {
        b.iter(|| union_graph_conflict(&base, &a1, &a2));
    });
    group.bench_function("fast_path_names", |b| {
        b.iter(|| sq_build::conflict::fast_path_conflict(&base, &a1, &a2));
    });
    // The expensive part Eq. 6 additionally requires: analyzing the
    // composed snapshot (the 4th graph build the union graph avoids).
    group.bench_function("analyze_composed_snapshot", |b| {
        b.iter(|| SnapshotAnalysis::analyze(&t12, &store).expect("analyzable"));
    });
    group.finish();
}

criterion_group!(benches, bench_target_hashing, bench_conflict_detectors);
criterion_main!(benches);
