//! Microbenchmarks for the speculation engine: the paper's Section 7.1
//! requirement is that greedy best-first selection scales to hundreds of
//! concurrent pending changes without materializing 2ⁿ builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sq_core::analyzer::{ConflictGraph, StatisticalAnalyzer};
use sq_core::predict::UniformPredictor;
use sq_core::speculation::SpeculationEngine;
use sq_workload::{ChangeSpec, WorkloadBuilder, WorkloadParams};
use std::collections::HashMap;

fn pending_set(n: usize) -> (sq_workload::Workload, ConflictGraph) {
    let w = WorkloadBuilder::new(WorkloadParams::ios())
        .seed(7)
        .n_changes(n)
        .build()
        .expect("valid params");
    let mut analyzer = StatisticalAnalyzer::new();
    let mut graph = ConflictGraph::new();
    let mut pending: Vec<&ChangeSpec> = Vec::new();
    for c in &w.changes {
        graph.admit(c, &pending, &mut analyzer);
        pending.push(c);
    }
    (w, graph)
}

fn bench_select_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("speculation_select_builds_budget500");
    for &n in &[50usize, 100, 200, 400] {
        let (w, graph) = pending_set(n);
        let pending: Vec<&ChangeSpec> = w.changes.iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                SpeculationEngine::select_builds(
                    &w,
                    &pending,
                    &graph,
                    &UniformPredictor,
                    &HashMap::new(),
                    &HashMap::new(),
                    500,
                )
            });
        });
    }
    group.finish();
}

fn bench_commit_probabilities(c: &mut Criterion) {
    let mut group = c.benchmark_group("speculation_commit_probabilities");
    for &n in &[100usize, 400] {
        let (w, graph) = pending_set(n);
        let pending: Vec<&ChangeSpec> = w.changes.iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                SpeculationEngine::commit_probabilities(
                    &w,
                    &pending,
                    &graph,
                    &UniformPredictor,
                    &HashMap::new(),
                    &HashMap::new(),
                )
            });
        });
    }
    group.finish();
}

fn bench_graph_admission(c: &mut Criterion) {
    c.bench_function("conflict_graph_admit_200th_change", |b| {
        let w = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(9)
            .n_changes(201)
            .build()
            .expect("valid params");
        b.iter(|| {
            let mut analyzer = StatisticalAnalyzer::new();
            let mut graph = ConflictGraph::new();
            let mut pending: Vec<&ChangeSpec> = Vec::new();
            for c in &w.changes[..200] {
                graph.admit(c, &pending, &mut analyzer);
                pending.push(c);
            }
            graph.admit(&w.changes[200], &pending, &mut analyzer);
            graph.len()
        });
    });
}

criterion_group!(
    benches,
    bench_select_builds,
    bench_commit_probabilities,
    bench_graph_admission
);
criterion_main!(benches);
