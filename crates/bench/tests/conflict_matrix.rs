//! Integration test for the conflict benchmark: a small real run must
//! produce byte-identical matrices across all three modes, a document
//! that validates, and a passing perf-regression gate on the 256-change
//! window.

use sq_bench::conflict::{run_conflict, validate, ConflictParams};

#[test]
fn small_run_gates_and_validates() {
    let params = ConflictParams {
        seed: 0x5EED,
        n_parts: 16,
        windows: vec![32, 256],
        threads: 8,
        reps: 2,
    };
    let report = run_conflict(&params);
    assert_eq!(report.windows.len(), 2);
    for r in &report.windows {
        assert!(r.identical, "window {}: matrices diverged", r.n);
        assert_eq!(r.pairs, (r.n * (r.n - 1) / 2) as u64);
        assert!(
            r.conflicts > 0,
            "window {}: a 16-part repo under 256 changes must conflict somewhere",
            r.n
        );
        assert!(r.conflicts <= r.pairs);
    }
    // The indexed mode must beat per-pair set materialization outright
    // on the gate window (the parallel bound is asserted by the gate).
    let gate = report.windows.iter().find(|r| r.n == 256).unwrap();
    assert!(
        gate.speedup_indexed() > 1.0,
        "indexed slower than serial: {:?}",
        gate
    );
    report.smoke_gate().expect("perf gate holds");
    validate(&report.to_json()).expect("document validates");
}
