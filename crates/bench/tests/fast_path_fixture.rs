//! Fixture for the §5.2 fast-path statistic plumbing: on a materialized
//! repository, changes that do not touch BUILD files must be decided by
//! `fast_path_conflict` (the cheap name-set check), while a change that
//! rewrites a BUILD file forces the detector off the fast path. This is
//! the property that makes the `graph_change_rate` statistic (only a few
//! percent of changes alter the build graph) operationally valuable.

use sq_build::affected::SnapshotAnalysis;
use sq_build::conflict::fast_path_conflict;
use sq_workload::repo_model::MaterializedRepo;
use sq_workload::{WorkloadBuilder, WorkloadParams};

#[test]
fn non_build_changes_take_the_fast_path() {
    let mut params = WorkloadParams::ios();
    params.n_parts = 8;
    let m = MaterializedRepo::generate(&params).expect("repo generates");
    let w = WorkloadBuilder::new(params)
        .seed(17)
        .n_changes(40)
        .build()
        .expect("valid params");

    let mut repo = m.repo.clone();
    let tree = repo.head_tree().expect("head tree");
    let base = SnapshotAnalysis::analyze(&tree, repo.store()).expect("base analyzable");

    let analyze =
        |change: &sq_workload::ChangeSpec, repo: &mut sq_vcs::Repository| -> SnapshotAnalysis {
            let patch = m.patch_for(change);
            let new_tree = patch.apply(&tree, repo.store_mut()).expect("patch applies");
            SnapshotAnalysis::analyze(&new_tree, repo.store()).expect("analyzable")
        };

    let plain: Vec<&sq_workload::ChangeSpec> = w
        .changes
        .iter()
        .filter(|c| !c.alters_build_graph && !c.parts.is_empty())
        .collect();
    assert!(plain.len() >= 2, "workload yields non-graph changes");

    // Two source-only changes on disjoint parts: fast path applies and
    // reports independence.
    let a = plain[0];
    let b = plain
        .iter()
        .find(|c| !c.potentially_conflicts(a))
        .expect("a disjoint-part change exists");
    let sa = analyze(a, &mut repo);
    let sb = analyze(b, &mut repo);
    assert_eq!(
        fast_path_conflict(&base, &sa, &sb),
        Some(false),
        "disjoint source-only edits: fast path applies, no conflict"
    );

    // The same part edited by two different changes writes different
    // content to the same file: fast path applies and flags the conflict.
    let mut twin = a.clone();
    twin.id = sq_workload::ChangeId(a.id.0 + 10_000);
    let st = analyze(&twin, &mut repo);
    assert_eq!(
        fast_path_conflict(&base, &sa, &st),
        Some(true),
        "same-part divergent edits: fast path applies and conflicts"
    );

    // A change that rewrites a BUILD file pushes the detector off the
    // fast path, so the full union-graph machinery must run.
    let mut structural = a.clone();
    structural.alters_build_graph = true;
    let ss = analyze(&structural, &mut repo);
    assert!(
        !base.same_graph_structure(&ss),
        "BUILD rewrite changes the parsed graph"
    );
    assert_eq!(
        fast_path_conflict(&base, &ss, &sb),
        None,
        "graph-altering change declines the fast path"
    );

    // The statistic the graph_change_rate binary reports is exactly the
    // marginal of the flag that gates the slow path.
    let expected =
        w.changes.iter().filter(|c| c.alters_build_graph).count() as f64 / w.changes.len() as f64;
    assert!((w.graph_change_rate() - expected).abs() < 1e-12);
}
