//! The e2e benchmark document must be a pure function of its params:
//! two same-seed runs are byte-identical, and the output validates.

use sq_bench::e2e::{run_e2e, validate, E2eParams};

/// Smoke-sized so the double run stays fast in debug builds.
fn tiny() -> E2eParams {
    E2eParams {
        seed: 7,
        n_changes: 25,
        rate: 150.0,
        workers: 30,
        fault_rate: 0.1,
        history_changes: 400,
    }
}

#[test]
fn same_seed_runs_are_byte_identical_and_valid() {
    let params = tiny();
    let a = run_e2e(&params);
    let b = run_e2e(&params);
    assert_eq!(a, b, "same-seed e2e documents must be byte-identical");
    validate(&a).expect("document must carry every required field");
}

#[test]
fn different_seeds_change_the_document() {
    let a = run_e2e(&tiny());
    let b = run_e2e(&E2eParams { seed: 8, ..tiny() });
    assert_ne!(a, b);
    validate(&b).expect("document must validate for any seed");
}
