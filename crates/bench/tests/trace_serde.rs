//! Workload traces serialize to JSON and replay identically — the
//! controlled-replay methodology of Section 8.1 depends on trace
//! stability (the paper ingested the *same* changes at different rates).

use sq_core::planner::{run_simulation, PlannerConfig};
use sq_core::strategy::{Strategy, StrategyKind};
use sq_workload::{Workload, WorkloadBuilder, WorkloadParams};

fn workload() -> Workload {
    WorkloadBuilder::new(WorkloadParams::ios().with_rate(150.0))
        .seed(99)
        .n_changes(60)
        .build()
        .unwrap()
}

#[test]
fn workload_roundtrips_through_json() {
    let w = workload();
    let json = serde_json::to_string(&w).expect("serializes");
    let back: Workload = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.changes.len(), w.changes.len());
    for (a, b) in w.changes.iter().zip(&back.changes) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.submit_time, b.submit_time);
        assert_eq!(a.build_duration, b.build_duration);
        assert_eq!(a.parts, b.parts);
        assert_eq!(a.intrinsic_success, b.intrinsic_success);
    }
    assert_eq!(back.seed, w.seed);
    assert_eq!(back.developers.len(), w.developers.len());
}

#[test]
fn deserialized_trace_replays_identically() {
    let w = workload();
    let json = serde_json::to_string(&w).expect("serializes");
    let back: Workload = serde_json::from_str(&json).expect("deserializes");
    let config = PlannerConfig {
        workers: 80,
        ..PlannerConfig::default()
    };
    let r1 = run_simulation(
        &w,
        &Strategy::build(StrategyKind::Oracle, &w, None),
        &config,
    );
    let r2 = run_simulation(
        &back,
        &Strategy::build(StrategyKind::Oracle, &back, None),
        &config,
    );
    assert_eq!(r1.commit_log, r2.commit_log);
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.builds_started, r2.builds_started);
}

#[test]
fn ground_truth_survives_serialization() {
    // The oracle relation is a pure function of (seed, params), so a
    // replayed trace reproduces every conflict verdict.
    let w = workload();
    let json = serde_json::to_string(&w).expect("serializes");
    let back: Workload = serde_json::from_str(&json).expect("deserializes");
    let t1 = w.truth();
    let t2 = back.truth();
    for pair in w.changes.windows(2) {
        assert_eq!(
            t1.real_conflict(&pair[0], &pair[1]),
            t2.real_conflict(&pair[0], &pair[1])
        );
    }
}
