//! Build-duration model (Figure 9).
//!
//! Figure 9 plots the CDF of build durations for iOS/Android changes:
//! roughly log-normal with a median near half an hour and a tail capped
//! around two hours. The truncated log-normal here reproduces that shape;
//! `fig09` in the bench crate prints the CDF for visual comparison.

use crate::params::WorkloadParams;
use sq_sim::dist::{Distribution, LogNormal, Truncated};
use sq_sim::{SimDuration, Xoshiro256StarStar};

/// Sampler for one platform's build durations.
#[derive(Debug, Clone, Copy)]
pub struct DurationModel {
    dist: Truncated<LogNormal>,
}

impl DurationModel {
    /// Build from workload parameters.
    pub fn new(params: &WorkloadParams) -> Self {
        DurationModel {
            dist: Truncated::new(
                LogNormal::with_median(params.duration_median_mins, params.duration_sigma),
                params.duration_min_mins,
                params.duration_max_mins,
            ),
        }
    }

    /// Draw one build duration.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> SimDuration {
        SimDuration::from_mins_f64(self.dist.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WorkloadParams;

    fn samples(params: &WorkloadParams, n: usize) -> Vec<f64> {
        let model = DurationModel::new(params);
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        (0..n)
            .map(|_| model.sample(&mut rng).as_mins_f64())
            .collect()
    }

    #[test]
    fn median_matches_figure9() {
        let params = WorkloadParams::ios();
        let mut xs = samples(&params, 50_001);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[25_000];
        assert!(
            (median - params.duration_median_mins).abs() < 1.5,
            "median = {median}"
        );
    }

    #[test]
    fn bounds_respected() {
        let params = WorkloadParams::ios();
        for x in samples(&params, 20_000) {
            assert!(x >= params.duration_min_mins && x <= params.duration_max_mins);
        }
    }

    #[test]
    fn tail_exists_but_is_minority() {
        // Figure 9: some builds take over an hour, but most are well
        // under. Expect 2–20% above 60 minutes for iOS.
        let xs = samples(&WorkloadParams::ios(), 50_000);
        let over_hour = xs.iter().filter(|&&x| x > 60.0).count() as f64 / xs.len() as f64;
        assert!(over_hour > 0.01 && over_hour < 0.25, "tail = {over_hour}");
    }

    #[test]
    fn android_is_similar_but_not_identical() {
        let ios = samples(&WorkloadParams::ios(), 20_000);
        let android = samples(&WorkloadParams::android(), 20_000);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Close (the paper overlays them) but the medians differ by 2 min.
        assert!((mean(&ios) - mean(&android)).abs() < 10.0);
        assert!(mean(&ios) > mean(&android));
    }
}
