//! Reproduction of the paper's Section 2 curves (Figures 1 and 2).
//!
//! Both curves are *emergent properties* of the generative model, not
//! hard-coded outputs: Figure 1 falls out of the Zipf part footprints
//! plus the pairwise conflict coin, and Figure 2 falls out of mainline
//! drift accumulating potentially conflicting commits over a change's
//! staleness window.

use crate::change::ChangeSpec;
use crate::generate::WorkloadBuilder;
use crate::params::WorkloadParams;
use crate::truth::GroundTruth;
use sq_sim::Xoshiro256StarStar;

/// Empirical probability that the n-th of `n` concurrent, *potentially
/// conflicting* changes has a real conflict with at least one of the
/// others — Figure 1's y-axis.
///
/// Methodology mirrors the paper's definition (Section 2.1): condition
/// on all `n` changes touching a common logical part, then ask how often
/// the last one conflicts for real.
pub fn real_conflict_probability(
    params: &WorkloadParams,
    n_concurrent: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(n_concurrent >= 2);
    let truth = GroundTruth::new(seed, params.pairwise_conflict_prob);
    // Generate a pool of changes; group into windows of n that share a
    // part with the subject (potentially conflicting by construction:
    // give every trial's group a shared part by filtering).
    let w = WorkloadBuilder::new(params.clone())
        .seed(seed)
        .n_changes(trials * n_concurrent * 2)
        .build()
        .expect("params validated by caller");
    let mut hits = 0usize;
    let mut done = 0usize;
    let mut pool = w.changes.iter();
    'outer: while done < trials {
        // Take the next change as subject; collect n−1 later changes that
        // potentially conflict with it.
        let Some(subject) = pool.next() else { break };
        let mut others: Vec<&ChangeSpec> = Vec::with_capacity(n_concurrent - 1);
        for c in w.changes.iter().filter(|c| c.id != subject.id) {
            if subject.potentially_conflicts(c) {
                others.push(c);
                if others.len() == n_concurrent - 1 {
                    if others.iter().any(|o| truth.real_conflict(subject, o)) {
                        hits += 1;
                    }
                    done += 1;
                    continue 'outer;
                }
            }
        }
        // Not enough potentially-conflicting partners for this subject.
    }
    if done == 0 {
        return 0.0;
    }
    hits as f64 / done as f64
}

/// Figure 2, emergent form: probability that a change branched
/// `staleness_hours` ago breaks the mainline, because the mainline has
/// drifted by organically-committed changes it really conflicts with.
///
/// `organic_rate_per_hour` is the mainline's own commit rate while the
/// change was in development (distinct from the controlled replay rates
/// of Section 8; a production mainline absorbs on the order of ten
/// commits an hour).
pub fn breakage_vs_staleness(
    params: &WorkloadParams,
    staleness_hours: f64,
    organic_rate_per_hour: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(staleness_hours >= 0.0 && organic_rate_per_hour >= 0.0);
    let truth = GroundTruth::new(seed, params.pairwise_conflict_prob);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0x51A1E);
    // One big pool: subjects and drifted mainline commits come from the
    // same generative distribution.
    let expected_drift = (staleness_hours * organic_rate_per_hour).ceil() as usize;
    let w = WorkloadBuilder::new(params.clone())
        .seed(seed)
        .n_changes((trials * (expected_drift + 2)).clamp(1000, 400_000))
        .build()
        .expect("params validated by caller");
    let mean_drift = staleness_hours * organic_rate_per_hour;
    let mut broken = 0usize;
    for t in 0..trials {
        // Subject: a pseudo-random pool member.
        let subject = &w.changes[(rng.next_below(w.changes.len() as u64)) as usize];
        // Drift count: Poisson(mean_drift) via inversion (small means).
        let k = poisson(mean_drift, &mut rng);
        let mut conflict = false;
        for _ in 0..k {
            let other = &w.changes[(rng.next_below(w.changes.len() as u64)) as usize];
            if other.id != subject.id && truth.real_conflict(subject, other) {
                conflict = true;
                break;
            }
        }
        let _ = t;
        if conflict {
            broken += 1;
        }
    }
    broken as f64 / trials.max(1) as f64
}

/// Sample a Poisson(λ) count. Knuth's method for small λ, normal
/// approximation above 30 (drift counts stay small in practice).
fn poisson(lambda: f64, rng: &mut Xoshiro256StarStar) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation, clamped at zero.
        let u1 = rng.next_f64().max(1e-12);
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (lambda + z * lambda.sqrt()).round().max(0.0) as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_anchor_points() {
        let params = WorkloadParams::ios();
        let p2 = real_conflict_probability(&params, 2, 1500, 31);
        let p16 = real_conflict_probability(&params, 16, 400, 31);
        // Paper: ≈5% at n=2, ≈40% at n=16.
        assert!((0.02..0.10).contains(&p2), "p2 = {p2}");
        assert!((0.25..0.60).contains(&p16), "p16 = {p16}");
    }

    #[test]
    fn figure1_is_monotone_in_n() {
        let params = WorkloadParams::ios();
        let p4 = real_conflict_probability(&params, 4, 600, 37);
        let p12 = real_conflict_probability(&params, 12, 300, 37);
        assert!(p12 > p4, "p4 = {p4}, p12 = {p12}");
    }

    #[test]
    fn figure2_increases_with_staleness() {
        let params = WorkloadParams::ios();
        let p_fresh = breakage_vs_staleness(&params, 0.1, 12.0, 1200, 41);
        let p_1h = breakage_vs_staleness(&params, 1.0, 12.0, 1200, 41);
        let p_10h = breakage_vs_staleness(&params, 10.0, 12.0, 1200, 41);
        assert!(p_fresh <= p_1h + 0.02, "fresh {p_fresh} vs 1h {p_1h}");
        assert!(p_1h < p_10h, "1h {p_1h} vs 10h {p_10h}");
        // Paper: 1–10 h staleness already carries a 10–20% breakage risk.
        assert!((0.01..0.40).contains(&p_1h), "p_1h = {p_1h}");
    }

    #[test]
    fn zero_staleness_never_breaks() {
        let params = WorkloadParams::ios();
        let p = breakage_vs_staleness(&params, 0.0, 12.0, 300, 43);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn poisson_mean() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(4.5, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.5).abs() < 0.1, "mean = {mean}");
        // Large-lambda branch.
        let mean_big: f64 = (0..n).map(|_| poisson(60.0, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean_big - 60.0).abs() < 1.0, "mean = {mean_big}");
    }
}
