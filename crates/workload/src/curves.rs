//! Reproduction of the paper's Section 2 curves (Figures 1 and 2).
//!
//! Both curves are *emergent properties* of the generative model, not
//! hard-coded outputs: Figure 1 falls out of the Zipf part footprints
//! plus the pairwise conflict coin, and Figure 2 falls out of mainline
//! drift accumulating potentially conflicting commits over a change's
//! staleness window.

use crate::change::ChangeSpec;
use crate::generate::WorkloadBuilder;
use crate::params::WorkloadParams;
use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};
use sq_sim::dist::Poisson;
use sq_sim::Xoshiro256StarStar;

/// The shape of the arrival process over simulated time.
///
/// [`Constant`](ArrivalCurve::Constant) is the paper's controlled-replay
/// setting: a homogeneous Poisson process at `changes_per_hour`.
/// [`Diurnal`](ArrivalCurve::Diurnal) models rush-hour traffic: each
/// `period_hours`-long cycle opens with a peak window covering
/// `peak_fraction` of the period during which the instantaneous rate is
/// `peak_multiplier ×` the configured mean; the off-peak level is scaled
/// down so the *period-averaged* rate still equals `changes_per_hour`
/// (so sweeps against a constant-rate baseline compare like for like).
///
/// Generation draws the non-homogeneous process by Poisson thinning
/// (Lewis–Shedler): candidates arrive at the peak rate and survive with
/// probability `rate(t) / peak_rate` — exact, and a deterministic
/// function of the arrival RNG stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum ArrivalCurve {
    /// Homogeneous Poisson arrivals at the configured mean rate.
    #[default]
    Constant,
    /// Periodic spikes: `peak_multiplier ×` the mean rate during the
    /// first `peak_fraction` of every `period_hours` cycle.
    Diurnal {
        /// Instantaneous rate during the peak window, as a multiple of
        /// the configured mean rate (the paper-adjacent adversarial
        /// setting uses 5–10×).
        peak_multiplier: f64,
        /// Fraction of each period spent at the peak rate, in (0, 1).
        peak_fraction: f64,
        /// Cycle length in hours.
        period_hours: f64,
    },
}

impl ArrivalCurve {
    /// Is this the homogeneous (no-thinning) process?
    pub fn is_constant(&self) -> bool {
        matches!(self, ArrivalCurve::Constant)
    }

    /// Sanity-check the shape parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ArrivalCurve::Constant => Ok(()),
            ArrivalCurve::Diurnal {
                peak_multiplier,
                peak_fraction,
                period_hours,
            } => {
                if !(peak_multiplier.is_finite() && peak_multiplier > 1.0) {
                    return Err("diurnal peak_multiplier must exceed 1".into());
                }
                if !(0.0..1.0).contains(&peak_fraction) || peak_fraction <= 0.0 {
                    return Err("diurnal peak_fraction must be in (0, 1)".into());
                }
                if peak_fraction * peak_multiplier >= 1.0 {
                    return Err("diurnal peak_fraction × peak_multiplier must stay below 1 \
                         (off-peak rate would go negative)"
                        .into());
                }
                if !(period_hours.is_finite() && period_hours > 0.0) {
                    return Err("diurnal period_hours must be positive".into());
                }
                Ok(())
            }
        }
    }

    /// Rate multiplier at simulated time `t_hours` (mean over one full
    /// period is exactly 1).
    pub fn multiplier_at(&self, t_hours: f64) -> f64 {
        match *self {
            ArrivalCurve::Constant => 1.0,
            ArrivalCurve::Diurnal {
                peak_multiplier,
                peak_fraction,
                period_hours,
            } => {
                let phase = t_hours.rem_euclid(period_hours);
                if phase < peak_fraction * period_hours {
                    peak_multiplier
                } else {
                    off_peak(peak_multiplier, peak_fraction)
                }
            }
        }
    }

    /// The largest multiplier the curve reaches (the thinning envelope).
    pub fn max_multiplier(&self) -> f64 {
        match *self {
            ArrivalCurve::Constant => 1.0,
            ArrivalCurve::Diurnal {
                peak_multiplier, ..
            } => peak_multiplier,
        }
    }

    /// Exact integral of the multiplier over `[0, hours]`. Dividing by
    /// `hours` gives the average multiplier; over whole periods it is
    /// exactly `hours` (the normalization the regression tests pin).
    pub fn integral_multiplier(&self, hours: f64) -> f64 {
        assert!(hours >= 0.0);
        match *self {
            ArrivalCurve::Constant => hours,
            ArrivalCurve::Diurnal {
                peak_multiplier,
                peak_fraction,
                period_hours,
            } => {
                let full_periods = (hours / period_hours).floor();
                let remainder = hours - full_periods * period_hours;
                let peak_len = peak_fraction * period_hours;
                let partial = if remainder <= peak_len {
                    remainder * peak_multiplier
                } else {
                    peak_len * peak_multiplier
                        + (remainder - peak_len) * off_peak(peak_multiplier, peak_fraction)
                };
                full_periods * period_hours + partial
            }
        }
    }
}

/// Off-peak multiplier making the period-average exactly 1:
/// `f·m + (1−f)·off = 1`.
fn off_peak(peak_multiplier: f64, peak_fraction: f64) -> f64 {
    (1.0 - peak_fraction * peak_multiplier) / (1.0 - peak_fraction)
}

/// Empirical probability that the n-th of `n` concurrent, *potentially
/// conflicting* changes has a real conflict with at least one of the
/// others — Figure 1's y-axis.
///
/// Methodology mirrors the paper's definition (Section 2.1): condition
/// on all `n` changes touching a common logical part, then ask how often
/// the last one conflicts for real.
pub fn real_conflict_probability(
    params: &WorkloadParams,
    n_concurrent: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(n_concurrent >= 2);
    let truth = GroundTruth::new(seed, params.pairwise_conflict_prob);
    // Generate a pool of changes; group into windows of n that share a
    // part with the subject (potentially conflicting by construction:
    // give every trial's group a shared part by filtering).
    let w = WorkloadBuilder::new(params.clone())
        .seed(seed)
        .n_changes(trials * n_concurrent * 2)
        .build()
        .expect("params validated by caller");
    let mut hits = 0usize;
    let mut done = 0usize;
    let mut pool = w.changes.iter();
    'outer: while done < trials {
        // Take the next change as subject; collect n−1 later changes that
        // potentially conflict with it.
        let Some(subject) = pool.next() else { break };
        let mut others: Vec<&ChangeSpec> = Vec::with_capacity(n_concurrent - 1);
        for c in w.changes.iter().filter(|c| c.id != subject.id) {
            if subject.potentially_conflicts(c) {
                others.push(c);
                if others.len() == n_concurrent - 1 {
                    if others.iter().any(|o| truth.real_conflict(subject, o)) {
                        hits += 1;
                    }
                    done += 1;
                    continue 'outer;
                }
            }
        }
        // Not enough potentially-conflicting partners for this subject.
    }
    if done == 0 {
        return 0.0;
    }
    hits as f64 / done as f64
}

/// Figure 2, emergent form: probability that a change branched
/// `staleness_hours` ago breaks the mainline, because the mainline has
/// drifted by organically-committed changes it really conflicts with.
///
/// `organic_rate_per_hour` is the mainline's own commit rate while the
/// change was in development (distinct from the controlled replay rates
/// of Section 8; a production mainline absorbs on the order of ten
/// commits an hour).
pub fn breakage_vs_staleness(
    params: &WorkloadParams,
    staleness_hours: f64,
    organic_rate_per_hour: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(staleness_hours >= 0.0 && organic_rate_per_hour >= 0.0);
    let truth = GroundTruth::new(seed, params.pairwise_conflict_prob);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0x51A1E);
    // One big pool: subjects and drifted mainline commits come from the
    // same generative distribution.
    let expected_drift = (staleness_hours * organic_rate_per_hour).ceil() as usize;
    let w = WorkloadBuilder::new(params.clone())
        .seed(seed)
        .n_changes((trials * (expected_drift + 2)).clamp(1000, 400_000))
        .build()
        .expect("params validated by caller");
    let mean_drift = staleness_hours * organic_rate_per_hour;
    let drift = Poisson::new(mean_drift);
    let mut broken = 0usize;
    for t in 0..trials {
        // Subject: a pseudo-random pool member.
        let subject = &w.changes[(rng.next_below(w.changes.len() as u64)) as usize];
        // Drift count: Poisson(mean_drift) via inversion (small means).
        let k = drift.draw(&mut rng) as usize;
        let mut conflict = false;
        for _ in 0..k {
            let other = &w.changes[(rng.next_below(w.changes.len() as u64)) as usize];
            if other.id != subject.id && truth.real_conflict(subject, other) {
                conflict = true;
                break;
            }
        }
        let _ = t;
        if conflict {
            broken += 1;
        }
    }
    broken as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_anchor_points() {
        let params = WorkloadParams::ios();
        let p2 = real_conflict_probability(&params, 2, 1500, 31);
        let p16 = real_conflict_probability(&params, 16, 400, 31);
        // Paper: ≈5% at n=2, ≈40% at n=16.
        assert!((0.02..0.10).contains(&p2), "p2 = {p2}");
        assert!((0.25..0.60).contains(&p16), "p16 = {p16}");
    }

    #[test]
    fn figure1_is_monotone_in_n() {
        let params = WorkloadParams::ios();
        let p4 = real_conflict_probability(&params, 4, 600, 37);
        let p12 = real_conflict_probability(&params, 12, 300, 37);
        assert!(p12 > p4, "p4 = {p4}, p12 = {p12}");
    }

    #[test]
    fn figure2_increases_with_staleness() {
        let params = WorkloadParams::ios();
        let p_fresh = breakage_vs_staleness(&params, 0.1, 12.0, 1200, 41);
        let p_1h = breakage_vs_staleness(&params, 1.0, 12.0, 1200, 41);
        let p_10h = breakage_vs_staleness(&params, 10.0, 12.0, 1200, 41);
        assert!(p_fresh <= p_1h + 0.02, "fresh {p_fresh} vs 1h {p_1h}");
        assert!(p_1h < p_10h, "1h {p_1h} vs 10h {p_10h}");
        // Paper: 1–10 h staleness already carries a 10–20% breakage risk.
        assert!((0.01..0.40).contains(&p_1h), "p_1h = {p_1h}");
    }

    #[test]
    fn zero_staleness_never_breaks() {
        let params = WorkloadParams::ios();
        let p = breakage_vs_staleness(&params, 0.0, 12.0, 300, 43);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn diurnal_curve_averages_to_one() {
        let c = ArrivalCurve::Diurnal {
            peak_multiplier: 6.0,
            peak_fraction: 0.1,
            period_hours: 8.0,
        };
        c.validate().unwrap();
        // Peak level is the configured multiple of the mean; off-peak
        // compensates so the period-average multiplier is exactly 1.
        assert_eq!(c.multiplier_at(0.1), 6.0);
        assert!(c.multiplier_at(4.0) < 1.0);
        assert!((c.integral_multiplier(8.0) - 8.0).abs() < 1e-12);
        assert!((c.integral_multiplier(24.0) - 24.0).abs() < 1e-12);
        // Mid-period partial integrals follow the piecewise shape.
        assert!((c.integral_multiplier(0.4) - 2.4).abs() < 1e-12);
        assert!(c.max_multiplier() == 6.0);
        // The curve is periodic.
        assert_eq!(c.multiplier_at(0.2), c.multiplier_at(8.2));
    }

    #[test]
    fn arrival_curve_validation() {
        assert!(ArrivalCurve::Constant.validate().is_ok());
        let bad = ArrivalCurve::Diurnal {
            peak_multiplier: 6.0,
            peak_fraction: 0.3, // 0.3 × 6 ≥ 1: off-peak would be negative
            period_hours: 8.0,
        };
        assert!(bad.validate().is_err());
        let bad = ArrivalCurve::Diurnal {
            peak_multiplier: 0.5,
            peak_fraction: 0.1,
            period_hours: 8.0,
        };
        assert!(bad.validate().is_err());
        let bad = ArrivalCurve::Diurnal {
            peak_multiplier: 6.0,
            peak_fraction: 0.1,
            period_hours: 0.0,
        };
        assert!(bad.validate().is_err());
    }
}
