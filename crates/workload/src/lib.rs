//! # sq-workload — synthetic change workloads calibrated to the paper
//!
//! The paper evaluates SubmitQueue by replaying nine months of production
//! iOS/Android changes at controlled ingestion rates (Section 8.1). Those
//! traces are proprietary, so this crate generates synthetic workloads
//! whose *published marginals* match the paper:
//!
//! * build-duration CDF (Figure 9): long-tailed, P50 ≈ 27 min, capped at
//!   ≈ 2 h — a truncated log-normal ([`duration`]);
//! * probability of real conflicts vs. number of concurrent potentially-
//!   conflicting changes (Figure 1): ≈5% at n=2 rising to ≈40% at n=16
//!   ([`truth`], [`curves`]);
//! * probability of breakage vs. change staleness (Figure 2)
//!   ([`curves::breakage_vs_staleness`]);
//! * the fraction of changes that alter the build graph: 7.9% (iOS),
//!   1.6% (backend) (Section 5.2).
//!
//! Every generated quantity is a deterministic function of the workload
//! seed, so all scheduling strategies in the benchmark harness replay the
//! *identical* trace — the paper's controlled-comparison methodology.
//!
//! Two fidelity levels:
//! * **statistical** ([`generate::Workload`]): change specs with arrival
//!   times, durations, touched logical parts, and a ground-truth oracle
//!   ([`truth::GroundTruth`]) for build outcomes — what the discrete-
//!   event simulations consume;
//! * **materialized** ([`repo_model`]): an actual `sq-vcs` repository
//!   with BUILD targets and per-change patches, for end-to-end tests that
//!   exercise the real conflict analyzer.
//!
//! Beyond the paper's benign replays, [`adversary`] layers named
//! pathologies (revert storms, part-correlated flaky-test clusters,
//! dependency-hub touches) and [`curves::ArrivalCurve`] adds diurnal
//! rate spikes; [`scenario`] bundles them into serde-backed manifests
//! forming the CI scenario matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod change;
pub mod curves;
pub mod duration;
pub mod features;
pub mod generate;
pub mod params;
pub mod repo_model;
pub mod scenario;
pub mod truth;

pub use adversary::{AdversaryPlan, FlakyClusters, HubTouches, RevertStorm};
pub use change::{ChangeId, ChangeSpec, DevProfile, Platform};
pub use curves::ArrivalCurve;
pub use generate::{Workload, WorkloadBuilder};
pub use params::WorkloadParams;
pub use scenario::{ParamOverrides, ScenarioManifest};
pub use truth::GroundTruth;
