//! The ground-truth oracle.
//!
//! The simulation needs an answer to "would build `B_{S∪{i}}` succeed?"
//! that is (a) consistent across strategies replaying the same trace,
//! (b) consistent with the paper's definition of real conflicts
//! (Section 2.1: changes 1..n−1 fine, change n fine alone, all together
//! broken ⇒ change n conflicts with some earlier change), and (c)
//! independent of the *order* in which strategies ask.
//!
//! We therefore make every outcome a pure function of the workload seed:
//! a change's isolated outcome is drawn at generation time
//! (`intrinsic_success`), and the pairwise real-conflict relation is a
//! deterministic hash coin over the unordered id pair, flipped only for
//! part-overlapping (potentially conflicting) pairs.

use crate::adversary::FlakyClusters;
use crate::change::ChangeSpec;
use serde::{Deserialize, Serialize};
use sq_sim::rng::SplitMix64;

/// Salt separating the flaky-test coin stream from the conflict coins.
const FLAKY_SALT: u64 = 0xF1A_C0DE;

/// Deterministic uniform in [0,1) keyed by (seed, a, b) with a ≤ b.
fn pair_unit(seed: u64, a: u64, b: u64) -> f64 {
    let mut h = SplitMix64::new(
        seed ^ a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xC2B2AE3D27D4EB4F),
    );
    // Two rounds to decorrelate from the key structure.
    h.next_u64();
    (h.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    seed: u64,
    /// Probability a potentially-conflicting pair really conflicts
    /// (Figure 1's n=2 intercept).
    pairwise_conflict_prob: f64,
    /// Part-correlated flaky-test clusters (adversarial scenarios only;
    /// absent field deserializes to `None` for older snapshots).
    flaky: Option<FlakyClusters>,
}

impl GroundTruth {
    /// Construct with the workload seed and calibrated pair probability.
    pub fn new(seed: u64, pairwise_conflict_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&pairwise_conflict_prob));
        GroundTruth {
            seed,
            pairwise_conflict_prob,
            flaky: None,
        }
    }

    /// Enable part-correlated flaky-test clusters: changes touching an
    /// afflicted part may deterministically fail their build steps.
    pub fn with_flaky(mut self, flaky: Option<FlakyClusters>) -> Self {
        self.flaky = flaky;
        self
    }

    /// Do this change's flaky tests fail it? Deterministic per
    /// (seed, change, afflicted part): unlike `sq-exec` infra faults the
    /// verdict never changes on retry, so the failure is genuinely
    /// attributable to the change and a rejection is *justified*. A
    /// change touching several afflicted parts flips one coin per part.
    pub fn flaky_failure(&self, c: &ChangeSpec) -> bool {
        let Some(flaky) = &self.flaky else {
            return false;
        };
        c.parts.iter().any(|&p| {
            flaky.afflicts(p)
                && pair_unit(self.seed ^ FLAKY_SALT, c.id.0, p.0 as u64) < flaky.failure_prob
        })
    }

    /// Would this change's build steps pass in isolation against the
    /// HEAD it was generated from? Under a flaky-cluster adversary the
    /// part-correlated test failures count against the change.
    pub fn succeeds_alone(&self, c: &ChangeSpec) -> bool {
        c.intrinsic_success && !self.flaky_failure(c)
    }

    /// Do two changes *really* conflict (per the paper's Section 2.1
    /// definition)? Symmetric, deterministic, and false unless the
    /// changes are potentially conflicting (touch a common part).
    pub fn real_conflict(&self, a: &ChangeSpec, b: &ChangeSpec) -> bool {
        if a.id == b.id || !a.potentially_conflicts(b) {
            return false;
        }
        let (lo, hi) = if a.id.0 <= b.id.0 {
            (a.id.0, b.id.0)
        } else {
            (b.id.0, a.id.0)
        };
        pair_unit(self.seed, lo, hi) < self.pairwise_conflict_prob
    }

    /// Outcome of a speculative build `B_{S ∪ {subject}}`: the build
    /// applies `subject` on top of the already-validated prefix `S`, so
    /// it succeeds iff the subject passes in isolation and conflicts with
    /// no member of the prefix.
    pub fn build_succeeds<'a>(
        &self,
        subject: &ChangeSpec,
        prefix: impl IntoIterator<Item = &'a ChangeSpec>,
    ) -> bool {
        if !self.succeeds_alone(subject) {
            return false;
        }
        prefix.into_iter().all(|p| !self.real_conflict(subject, p))
    }

    /// Outcome of building a whole batch at once (batching baselines):
    /// succeeds iff every member succeeds alone and no pair conflicts.
    pub fn batch_succeeds(&self, batch: &[&ChangeSpec]) -> bool {
        for (i, a) in batch.iter().enumerate() {
            if !self.succeeds_alone(a) {
                return false;
            }
            for b in &batch[i + 1..] {
                if self.real_conflict(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::{ChangeId, DevId, PartId};
    use sq_sim::{SimDuration, SimTime};

    fn spec(id: u64, parts: &[u32], ok: bool) -> ChangeSpec {
        ChangeSpec {
            id: ChangeId(id),
            submit_time: SimTime::ZERO,
            build_duration: SimDuration::from_mins(30),
            developer: DevId(0),
            revision: id,
            revision_attempt: 0,
            has_revert_plan: false,
            has_test_plan: true,
            files_changed: 1,
            lines_added: 10,
            lines_removed: 0,
            git_commits: 1,
            affected_targets: 2,
            presubmit_passed: true,
            parts: parts.iter().map(|&p| PartId(p)).collect(),
            alters_build_graph: false,
            emergency: false,
            intrinsic_success: ok,
            intrinsic_success_prob: if ok { 0.9 } else { 0.1 },
        }
    }

    #[test]
    fn conflict_requires_part_overlap() {
        let gt = GroundTruth::new(7, 1.0); // always conflict if possible
        let a = spec(1, &[1], true);
        let b = spec(2, &[1], true);
        let c = spec(3, &[2], true);
        assert!(gt.real_conflict(&a, &b));
        assert!(!gt.real_conflict(&a, &c));
        assert!(!gt.real_conflict(&a, &a));
    }

    #[test]
    fn conflict_is_symmetric_and_deterministic() {
        let gt = GroundTruth::new(11, 0.5);
        for i in 0..50u64 {
            for j in (i + 1)..50u64 {
                let a = spec(i, &[1], true);
                let b = spec(j, &[1], true);
                assert_eq!(gt.real_conflict(&a, &b), gt.real_conflict(&b, &a));
                // Re-query gives the same answer.
                assert_eq!(gt.real_conflict(&a, &b), gt.real_conflict(&a, &b));
            }
        }
    }

    #[test]
    fn conflict_rate_matches_parameter() {
        let gt = GroundTruth::new(13, 0.05);
        let mut conflicts = 0u32;
        let n = 40_000u64;
        for k in 0..n {
            let a = spec(2 * k, &[1], true);
            let b = spec(2 * k + 1, &[1], true);
            if gt.real_conflict(&a, &b) {
                conflicts += 1;
            }
        }
        let rate = conflicts as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate = {rate}");
    }

    #[test]
    fn figure1_curve_shape() {
        // With q = 0.05 per pair, P(change n conflicts with ≥1 of n−1
        // others) = 1 − (1−q)^(n−1): ≈5% at n=2, ≈40–55% at n=16. This is
        // the Figure 1 reproduction at the model level.
        let gt = GroundTruth::new(17, 0.05);
        let trials = 3_000u64;
        let rate_at = |n: usize| {
            let mut hits = 0u32;
            for t in 0..trials {
                let base = t * 100;
                let subject = spec(base, &[1], true);
                let others: Vec<ChangeSpec> =
                    (1..n as u64).map(|k| spec(base + k, &[1], true)).collect();
                if others.iter().any(|o| gt.real_conflict(&subject, o)) {
                    hits += 1;
                }
            }
            hits as f64 / trials as f64
        };
        let p2 = rate_at(2);
        let p16 = rate_at(16);
        assert!((p2 - 0.05).abs() < 0.02, "p2 = {p2}");
        assert!((0.30..0.65).contains(&p16), "p16 = {p16}");
        assert!(p16 > p2 * 4.0);
    }

    #[test]
    fn build_succeeds_semantics() {
        let gt = GroundTruth::new(7, 1.0);
        let a = spec(1, &[1], true);
        let b = spec(2, &[1], true);
        let c = spec(3, &[9], true);
        let broken = spec(4, &[8], false);
        // Alone: fine.
        assert!(gt.build_succeeds(&a, []));
        // On a conflicting prefix: fails.
        assert!(!gt.build_succeeds(&b, [&a]));
        // On an independent prefix: fine.
        assert!(gt.build_succeeds(&c, [&a, &b]));
        // Intrinsically broken: fails even alone.
        assert!(!gt.build_succeeds(&broken, []));
    }

    #[test]
    fn batch_semantics() {
        let gt = GroundTruth::new(7, 1.0);
        let a = spec(1, &[1], true);
        let b = spec(2, &[1], true); // conflicts with a (q = 1)
        let c = spec(3, &[9], true);
        let broken = spec(4, &[8], false);
        assert!(gt.batch_succeeds(&[&a, &c]));
        assert!(!gt.batch_succeeds(&[&a, &b]));
        assert!(!gt.batch_succeeds(&[&c, &broken]));
        assert!(gt.batch_succeeds(&[]));
    }

    #[test]
    fn flaky_clusters_flow_through_the_oracle() {
        use crate::adversary::FlakyClusters;
        let flaky = FlakyClusters {
            parts: vec![PartId(1)],
            failure_prob: 1.0, // every exposed change flakes
        };
        let gt = GroundTruth::new(7, 0.0).with_flaky(Some(flaky));
        let exposed = spec(1, &[1, 5], true);
        let bystander = spec(2, &[5], true);
        // The exposed change fails alone, and everywhere downstream.
        assert!(gt.flaky_failure(&exposed));
        assert!(!gt.succeeds_alone(&exposed));
        assert!(!gt.build_succeeds(&exposed, []));
        assert!(!gt.batch_succeeds(&[&exposed, &bystander]));
        // The bystander is untouched even though it shares a part with
        // the exposed change.
        assert!(!gt.flaky_failure(&bystander));
        assert!(gt.succeeds_alone(&bystander));
        assert!(gt.build_succeeds(&bystander, []));
        // Verdicts are stable across re-queries (no infra-style retry
        // escape hatch).
        assert_eq!(gt.flaky_failure(&exposed), gt.flaky_failure(&exposed));
        // Without the adversary the same change is fine.
        assert!(GroundTruth::new(7, 0.0).succeeds_alone(&exposed));
    }

    #[test]
    fn flaky_failure_rate_matches_parameter() {
        use crate::adversary::FlakyClusters;
        let flaky = FlakyClusters {
            parts: vec![PartId(1)],
            failure_prob: 0.3,
        };
        let gt = GroundTruth::new(19, 0.0).with_flaky(Some(flaky));
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&k| gt.flaky_failure(&spec(k, &[1], true)))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
        // Changes off the afflicted part never flake.
        assert!((0..n).all(|k| !gt.flaky_failure(&spec(k, &[2], true))));
    }

    #[test]
    fn different_seeds_give_different_relations() {
        let g1 = GroundTruth::new(1, 0.5);
        let g2 = GroundTruth::new(2, 0.5);
        let pairs: Vec<(ChangeSpec, ChangeSpec)> = (0..64u64)
            .map(|k| (spec(2 * k, &[1], true), spec(2 * k + 1, &[1], true)))
            .collect();
        let v1: Vec<bool> = pairs.iter().map(|(a, b)| g1.real_conflict(a, b)).collect();
        let v2: Vec<bool> = pairs.iter().map(|(a, b)| g2.real_conflict(a, b)).collect();
        assert_ne!(v1, v2);
    }
}
