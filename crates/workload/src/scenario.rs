//! Named scenario manifests.
//!
//! A scenario is a reproducible experiment: a platform preset plus
//! parameter overrides, an arrival-curve shape, an adversary plan, an
//! infra-fault rate and a worker fleet — everything needed to replay the
//! same adversarial day through every scheduling strategy. Manifests are
//! serde-backed so they can live in JSON next to the benchmark results
//! they produced, and [`ScenarioManifest::matrix`] is the single source
//! of truth for the named CI matrix
//! (`baseline`, `revert-storm`, `flaky-cluster`, `hub-touch`,
//! `diurnal-spike`) that `bench_scenarios` runs.

use crate::adversary::{AdversaryPlan, FlakyClusters, HubTouches, RevertStorm};
use crate::change::{PartId, Platform};
use crate::curves::ArrivalCurve;
use crate::generate::{Workload, WorkloadBuilder};
use crate::params::WorkloadParams;
use serde::{Deserialize, Serialize};

/// Optional overrides applied on top of the platform preset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamOverrides {
    /// Ingestion rate in changes/hour.
    pub changes_per_hour: Option<f64>,
    /// Probability a potentially-conflicting pair really conflicts.
    pub pairwise_conflict_prob: Option<f64>,
    /// Zipf exponent of part popularity.
    pub part_zipf_s: Option<f64>,
    /// Mean number of parts one change touches.
    pub mean_parts_per_change: Option<f64>,
}

/// One named, fully-specified adversarial experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioManifest {
    /// Stable name (doubles as the JSON artifact file stem).
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// Which platform preset the workload starts from.
    pub platform: Platform,
    /// Parameter overrides on top of the preset.
    pub overrides: ParamOverrides,
    /// Arrival-curve shape.
    pub arrival: ArrivalCurve,
    /// Adversary plan.
    pub adversary: AdversaryPlan,
    /// Replayed span in hours (sets the change count at the configured
    /// rate).
    pub duration_hours: f64,
    /// Per-attempt infra-fault probability handed to the planner's
    /// `SimFaults` (machine flakes — retried, never grounds for
    /// rejection; distinct from the adversary's flaky-test clusters).
    pub infra_fault_rate: f64,
    /// Worker fleet size.
    pub workers: usize,
    /// Shards the planner partitions the part space into (`0` = the
    /// classic single planning queue). Older manifests without the
    /// field deserialize as unsharded.
    #[serde(default)]
    pub shards: usize,
}

impl ScenarioManifest {
    /// The benign control: the paper's constant-rate replay.
    pub fn baseline() -> Self {
        ScenarioManifest {
            name: "baseline".into(),
            description: "constant-rate Poisson traffic, no adversary".into(),
            platform: Platform::Ios,
            overrides: ParamOverrides {
                changes_per_hour: Some(200.0),
                ..ParamOverrides::default()
            },
            arrival: ArrivalCurve::Constant,
            adversary: AdversaryPlan::none(),
            duration_hours: 1.0,
            infra_fault_rate: 0.03,
            workers: 120,
            shards: 0,
        }
    }

    /// Bursts of changes re-touching a recently landed change's parts.
    pub fn revert_storm() -> Self {
        ScenarioManifest {
            name: "revert-storm".into(),
            description: "bursts of follow-ups re-touching a recent change's parts".into(),
            adversary: AdversaryPlan {
                revert_storm: Some(RevertStorm {
                    epicenter_prob: 0.04,
                    burst: 6,
                    window_mins: 30.0,
                }),
                ..AdversaryPlan::none()
            },
            ..Self::baseline()
        }
    }

    /// Part-correlated flaky tests flowing through the ground truth.
    pub fn flaky_cluster() -> Self {
        ScenarioManifest {
            name: "flaky-cluster".into(),
            description: "part-correlated flaky tests on the three hottest parts".into(),
            adversary: AdversaryPlan {
                flaky: Some(FlakyClusters {
                    parts: vec![PartId(0), PartId(1), PartId(2)],
                    failure_prob: 0.3,
                }),
                ..AdversaryPlan::none()
            },
            ..Self::baseline()
        }
    }

    /// Changes that also touch the dependency-hub parts.
    pub fn hub_touch() -> Self {
        ScenarioManifest {
            name: "hub-touch".into(),
            description: "15% of changes also touch the three dependency-hub parts".into(),
            adversary: AdversaryPlan {
                hub: Some(HubTouches {
                    prob: 0.15,
                    span: 3,
                }),
                ..AdversaryPlan::none()
            },
            ..Self::baseline()
        }
    }

    /// Rush-hour spikes at 6× the mean rate.
    pub fn diurnal_spike() -> Self {
        ScenarioManifest {
            name: "diurnal-spike".into(),
            description: "arrival spikes at 6x the mean rate every half hour".into(),
            arrival: ArrivalCurve::Diurnal {
                peak_multiplier: 6.0,
                peak_fraction: 0.15,
                period_hours: 0.5,
            },
            ..Self::baseline()
        }
    }

    /// Sharded planning under an arbiter-hostile footprint mix: wide
    /// changes that straddle shards and hub touches that drag otherwise
    /// shard-local changes into the arbiter lane, so the cross-shard
    /// path (not the per-shard fast path) carries the load.
    pub fn shard_stress() -> Self {
        ScenarioManifest {
            name: "shard-stress".into(),
            description: "sharded planner with wide footprints forcing the arbiter lane".into(),
            overrides: ParamOverrides {
                changes_per_hour: Some(200.0),
                mean_parts_per_change: Some(3.0),
                ..ParamOverrides::default()
            },
            adversary: AdversaryPlan {
                hub: Some(HubTouches {
                    prob: 0.25,
                    span: 3,
                }),
                ..AdversaryPlan::none()
            },
            shards: 4,
            ..Self::baseline()
        }
    }

    /// The named CI matrix, in reporting order. `bench_scenarios`, the
    /// committed `BENCH_scenarios.json` and the smoke gate all iterate
    /// exactly this list.
    pub fn matrix() -> Vec<ScenarioManifest> {
        vec![
            Self::baseline(),
            Self::revert_storm(),
            Self::flaky_cluster(),
            Self::hub_touch(),
            Self::diurnal_spike(),
            Self::shard_stress(),
        ]
    }

    /// Look a named scenario up in the matrix.
    pub fn by_name(name: &str) -> Option<ScenarioManifest> {
        Self::matrix().into_iter().find(|m| m.name == name)
    }

    /// Resolve the platform preset plus overrides into validated
    /// workload parameters.
    pub fn params(&self) -> Result<WorkloadParams, String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if !(self.duration_hours.is_finite() && self.duration_hours > 0.0) {
            return Err("duration_hours must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.infra_fault_rate) {
            return Err("infra_fault_rate must be a probability".into());
        }
        if self.workers == 0 {
            return Err("workers must be positive".into());
        }
        let mut p = match self.platform {
            Platform::Ios => WorkloadParams::ios(),
            Platform::Android => WorkloadParams::android(),
            Platform::Backend => WorkloadParams::backend(),
        };
        if let Some(rate) = self.overrides.changes_per_hour {
            p.changes_per_hour = rate;
        }
        if let Some(q) = self.overrides.pairwise_conflict_prob {
            p.pairwise_conflict_prob = q;
        }
        if let Some(s) = self.overrides.part_zipf_s {
            p.part_zipf_s = s;
        }
        if let Some(m) = self.overrides.mean_parts_per_change {
            p.mean_parts_per_change = m;
        }
        p.arrival = self.arrival.clone();
        p.adversary = self.adversary.clone();
        p.validate()?;
        Ok(p)
    }

    /// Number of changes a full-duration replay generates.
    pub fn n_changes(&self) -> Result<usize, String> {
        let p = self.params()?;
        Ok((p.changes_per_hour * self.duration_hours).round() as usize)
    }

    /// Generate the scenario's workload. `n_changes` trims or extends
    /// the replay (pass [`ScenarioManifest::n_changes`] for the full
    /// configured duration; smoke runs pass something smaller).
    pub fn workload(&self, seed: u64, n_changes: usize) -> Result<Workload, String> {
        WorkloadBuilder::new(self.params()?)
            .seed(seed)
            .n_changes(n_changes)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_names_are_unique_and_stable() {
        let names: Vec<String> = ScenarioManifest::matrix()
            .into_iter()
            .map(|m| m.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "baseline",
                "revert-storm",
                "flaky-cluster",
                "hub-touch",
                "diurnal-spike",
                "shard-stress"
            ]
        );
        for name in &names {
            assert_eq!(ScenarioManifest::by_name(name).unwrap().name, name.as_str());
        }
        assert!(ScenarioManifest::by_name("nope").is_none());
    }

    #[test]
    fn every_matrix_scenario_validates_and_generates() {
        for m in ScenarioManifest::matrix() {
            let p = m.params().unwrap_or_else(|e| panic!("{}: {e}", m.name));
            assert!(p.changes_per_hour > 0.0);
            let n = m.n_changes().unwrap();
            assert!(n >= 100, "{}: n = {n}", m.name);
            let w = m.workload(1, 50).unwrap();
            assert_eq!(w.changes.len(), 50);
        }
    }

    #[test]
    fn invalid_manifests_are_rejected() {
        let mut m = ScenarioManifest::baseline();
        m.duration_hours = 0.0;
        assert!(m.params().is_err());
        let mut m = ScenarioManifest::baseline();
        m.infra_fault_rate = 1.5;
        assert!(m.params().is_err());
        let mut m = ScenarioManifest::baseline();
        m.workers = 0;
        assert!(m.params().is_err());
        let mut m = ScenarioManifest::baseline();
        m.name.clear();
        assert!(m.params().is_err());
        // Bad nested pieces surface through the same path.
        let mut m = ScenarioManifest::diurnal_spike();
        m.arrival = ArrivalCurve::Diurnal {
            peak_multiplier: 6.0,
            peak_fraction: 0.5,
            period_hours: 0.5,
        };
        assert!(m.params().is_err());
    }

    #[test]
    fn overrides_apply_on_top_of_the_preset() {
        let mut m = ScenarioManifest::baseline();
        m.platform = Platform::Backend;
        m.overrides.pairwise_conflict_prob = Some(0.08);
        m.overrides.part_zipf_s = Some(1.1);
        let p = m.params().unwrap();
        assert_eq!(p.platform, Platform::Backend);
        assert_eq!(p.pairwise_conflict_prob, 0.08);
        assert_eq!(p.part_zipf_s, 1.1);
        // Untouched knobs keep the preset value.
        assert_eq!(
            p.graph_change_fraction,
            WorkloadParams::backend().graph_change_fraction
        );
    }
}
