//! Feature extraction for the prediction models (paper Section 7.2).
//!
//! The paper extracted ~100 handpicked features in four groups — change,
//! revision, developer, and dynamic speculation counters — and found the
//! strongest positive signals were (1) succeeded-speculation count,
//! (2) revert/test plans, and (3) pre-submit test status, with failed
//! speculations and resubmission count most negative. The schema here is
//! a condensed version of exactly those groups.

use crate::change::{ChangeSpec, DevProfile};

/// Names of the success-model features, in column order.
pub const SUCCESS_FEATURES: &[&str] = &[
    // Change group.
    "affected_targets",
    "git_commits",
    "files_changed",
    "lines_added",
    "lines_removed",
    "presubmit_passed",
    // Revision group.
    "revision_attempt",
    "has_revert_plan",
    "has_test_plan",
    // Developer group.
    "dev_experience",
    "dev_tenure_months",
    "dev_fragile_paths",
    // Dynamic speculation group (0 at submission; updated as the planner
    // observes speculation outcomes).
    "speculations_succeeded",
    "speculations_failed",
];

/// Names of the pairwise conflict-model features.
pub const CONFLICT_FEATURES: &[&str] = &[
    "same_team",
    "common_parts",
    "min_parts",
    "max_parts",
    "sum_affected_targets",
    "either_alters_graph",
    "both_presubmit_passed",
];

/// Extract the success-model feature vector for one change.
///
/// `spec_ok`/`spec_fail` are the dynamic speculation counters: how many
/// speculative builds containing this change have succeeded/failed so
/// far. At submission both are zero.
pub fn success_features(
    change: &ChangeSpec,
    dev: &DevProfile,
    spec_ok: u32,
    spec_fail: u32,
) -> Vec<f64> {
    vec![
        change.affected_targets as f64,
        change.git_commits as f64,
        change.files_changed as f64,
        (change.lines_added as f64).ln_1p(),
        (change.lines_removed as f64).ln_1p(),
        bool_f(change.presubmit_passed),
        change.revision_attempt as f64,
        bool_f(change.has_revert_plan),
        bool_f(change.has_test_plan),
        dev.experience,
        dev.tenure_months,
        bool_f(dev.fragile_code_paths),
        spec_ok as f64,
        spec_fail as f64,
    ]
}

/// Extract the pairwise conflict-model feature vector.
pub fn conflict_features(
    a: &ChangeSpec,
    dev_a: &DevProfile,
    b: &ChangeSpec,
    dev_b: &DevProfile,
) -> Vec<f64> {
    let common = a.parts.iter().filter(|p| b.parts.contains(p)).count() as f64;
    vec![
        bool_f(dev_a.team == dev_b.team),
        common,
        a.parts.len().min(b.parts.len()) as f64,
        a.parts.len().max(b.parts.len()) as f64,
        (a.affected_targets + b.affected_targets) as f64,
        bool_f(a.alters_build_graph || b.alters_build_graph),
        bool_f(a.presubmit_passed && b.presubmit_passed),
    ]
}

fn bool_f(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{Workload, WorkloadBuilder};
    use crate::params::WorkloadParams;

    fn workload() -> Workload {
        WorkloadBuilder::new(WorkloadParams::ios())
            .seed(5)
            .n_changes(100)
            .build()
            .unwrap()
    }

    #[test]
    fn success_vector_matches_schema_width() {
        let w = workload();
        let c = &w.changes[0];
        let v = success_features(c, w.developer(c.developer), 2, 1);
        assert_eq!(v.len(), SUCCESS_FEATURES.len());
        // Dynamic counters land in the last two columns.
        assert_eq!(v[v.len() - 2], 2.0);
        assert_eq!(v[v.len() - 1], 1.0);
    }

    #[test]
    fn conflict_vector_matches_schema_width() {
        let w = workload();
        let (a, b) = (&w.changes[0], &w.changes[1]);
        let v = conflict_features(a, w.developer(a.developer), b, w.developer(b.developer));
        assert_eq!(v.len(), CONFLICT_FEATURES.len());
    }

    #[test]
    fn common_parts_feature_counts_overlap() {
        let w = workload();
        let c = &w.changes[0];
        let dev = w.developer(c.developer);
        let v = conflict_features(c, dev, c, dev);
        // Self-pair: common parts = own part count.
        assert_eq!(v[1], c.parts.len() as f64);
        assert_eq!(v[0], 1.0); // same team (same developer)
    }

    #[test]
    fn features_are_finite() {
        let w = workload();
        for c in &w.changes {
            for x in success_features(c, w.developer(c.developer), 0, 0) {
                assert!(x.is_finite());
            }
        }
    }
}
