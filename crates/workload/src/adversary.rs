//! Adversarial workload generators.
//!
//! The paper's evaluation replays benign Poisson traffic; a submit queue
//! earns its keep on the pathological days. This module layers three
//! named adversaries on top of [`crate::generate`]'s statistical model —
//! each one a deterministic *post-pass* over the generated change stream
//! driven by its own RNG split, so enabling an adversary never perturbs
//! the baseline trace drawn from the same seed:
//!
//! * [`RevertStorm`] — bursts of follow-up changes touching the same
//!   parts as a recently landed "epicenter" change (mass reverts and
//!   fix-forwards after a bad landing), which spikes the number of
//!   potentially-conflicting concurrent changes (Figure 1's x-axis).
//! * [`FlakyClusters`] — test-level nondeterminism *correlated with
//!   specific parts*. Unlike `sq-exec`'s infra faults (machine-level,
//!   retried, never grounds for rejection), these failures flow through
//!   [`crate::truth::GroundTruth::succeeds_alone`]: a flake-afflicted
//!   change genuinely fails its build steps, so rejecting it is
//!   *justified* and the learned predictor can pick up the signal from
//!   the part-correlated features.
//! * [`HubTouches`] — changes that also touch a small set of
//!   dependency-hub parts (the Zipf-hottest ranks), making them
//!   potentially conflict with nearly everything in flight.

use crate::change::PartId;
use serde::{Deserialize, Serialize};

/// A burst of changes re-touching a recent change's parts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RevertStorm {
    /// Probability that any given change becomes a storm epicenter.
    pub epicenter_prob: f64,
    /// Number of subsequent changes pulled into the storm.
    pub burst: usize,
    /// Only changes submitted within this window of the epicenter are
    /// pulled in (at high rates the burst cap binds first).
    pub window_mins: f64,
}

impl RevertStorm {
    /// Sanity-check the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.epicenter_prob) {
            return Err("revert_storm.epicenter_prob must be a probability".into());
        }
        if self.burst == 0 {
            return Err("revert_storm.burst must be positive".into());
        }
        if !(self.window_mins.is_finite() && self.window_mins > 0.0) {
            return Err("revert_storm.window_mins must be positive".into());
        }
        Ok(())
    }
}

/// Part-correlated test flakiness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlakyClusters {
    /// The afflicted parts (low ids are the Zipf-hottest, so afflicting
    /// them exposes many changes).
    pub parts: Vec<PartId>,
    /// Per-(change, afflicted part) probability that the flaky tests
    /// fail the change's build steps.
    pub failure_prob: f64,
}

impl FlakyClusters {
    /// Sanity-check the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.parts.is_empty() {
            return Err("flaky.parts must name at least one part".into());
        }
        if !(0.0..=1.0).contains(&self.failure_prob) {
            return Err("flaky.failure_prob must be a probability".into());
        }
        Ok(())
    }

    /// Is this part afflicted?
    pub fn afflicts(&self, part: PartId) -> bool {
        self.parts.contains(&part)
    }
}

/// Changes that additionally touch dependency-hub parts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HubTouches {
    /// Probability that a change also touches the hub.
    pub prob: f64,
    /// The hub is parts `0..span` — the hottest Zipf ranks, which the
    /// organic footprint distribution already concentrates on.
    pub span: usize,
}

impl HubTouches {
    /// Sanity-check the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.prob) {
            return Err("hub.prob must be a probability".into());
        }
        if self.span == 0 {
            return Err("hub.span must be positive".into());
        }
        Ok(())
    }
}

/// Which adversaries a workload enables (all off by default).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Revert-storm bursts.
    pub revert_storm: Option<RevertStorm>,
    /// Part-correlated flaky tests.
    pub flaky: Option<FlakyClusters>,
    /// Dependency-hub touches.
    pub hub: Option<HubTouches>,
}

impl AdversaryPlan {
    /// The benign plan: no adversaries.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no adversary is enabled.
    pub fn is_benign(&self) -> bool {
        self.revert_storm.is_none() && self.flaky.is_none() && self.hub.is_none()
    }

    /// Sanity-check every enabled adversary.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(s) = &self.revert_storm {
            s.validate()?;
        }
        if let Some(f) = &self.flaky {
            f.validate()?;
        }
        if let Some(h) = &self.hub {
            h.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_benign() {
        assert!(AdversaryPlan::default().is_benign());
        assert!(AdversaryPlan::none().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let plan = AdversaryPlan {
            revert_storm: Some(RevertStorm {
                epicenter_prob: 1.5,
                burst: 4,
                window_mins: 30.0,
            }),
            ..AdversaryPlan::none()
        };
        assert!(plan.validate().is_err());
        let plan = AdversaryPlan {
            flaky: Some(FlakyClusters {
                parts: vec![],
                failure_prob: 0.3,
            }),
            ..AdversaryPlan::none()
        };
        assert!(plan.validate().is_err());
        let plan = AdversaryPlan {
            hub: Some(HubTouches { prob: 0.2, span: 0 }),
            ..AdversaryPlan::none()
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn round_trips_through_serde() {
        let plan = AdversaryPlan {
            revert_storm: Some(RevertStorm {
                epicenter_prob: 0.05,
                burst: 6,
                window_mins: 30.0,
            }),
            flaky: Some(FlakyClusters {
                parts: vec![PartId(0), PartId(3)],
                failure_prob: 0.35,
            }),
            hub: Some(HubTouches { prob: 0.2, span: 3 }),
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: AdversaryPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // A benign plan round-trips too (Options as nulls).
        let none = AdversaryPlan::none();
        let back: AdversaryPlan = serde_json::from_str(&serde_json::to_string(&none).unwrap())
            .expect("benign plan parses");
        assert_eq!(back, none);
    }
}
