//! Change, revision and developer records.
//!
//! Mirrors the paper's data model (Section 3.1): a *revision* is a
//! container for *changes*; a change is a code patch plus build steps and
//! metadata. The metadata fields here are exactly the feature groups of
//! Section 7.2 (change, revision, developer) so the ML pipeline can be
//! reproduced.

use serde::{Deserialize, Serialize};
use sq_sim::{SimDuration, SimTime};
use std::fmt;

/// Which monorepo a workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// The iOS monorepo (Mac Mini build fleet, UI tests).
    Ios,
    /// The Android monorepo.
    Android,
    /// The backend monorepo.
    Backend,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::Ios => f.write_str("iOS"),
            Platform::Android => f.write_str("Android"),
            Platform::Backend => f.write_str("Backend"),
        }
    }
}

/// Identifier of a change, dense and ordered by submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChangeId(pub u64);

impl fmt::Display for ChangeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifier of a logical repository part (hot-spot category).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartId(pub u32);

/// Identifier of a developer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DevId(pub u32);

/// A developer profile — the Section 7.2 "developer" feature group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DevProfile {
    /// Identifier.
    pub id: DevId,
    /// Experience in [0, 1]; experienced developers "do due diligence
    /// before landing their changes" (paper).
    pub experience: f64,
    /// Employment length in months.
    pub tenure_months: f64,
    /// Team index; same-team developers "conflict with each other more
    /// often" (paper).
    pub team: u32,
    /// Whether this developer works on fragile code paths (core
    /// libraries) — raises failure odds.
    pub fragile_code_paths: bool,
}

/// One submitted change — everything observable at submission time, plus
/// the (hidden) ground-truth outcome used by the simulation oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeSpec {
    /// Dense id, ordered by submission time.
    pub id: ChangeId,
    /// Submission (enqueue) time.
    pub submit_time: SimTime,
    /// Duration of this change's full build (all steps).
    pub build_duration: SimDuration,
    /// The submitting developer.
    pub developer: DevId,
    /// Revision container id.
    pub revision: u64,
    /// How many times changes were submitted to this revision before
    /// (the paper: resubmission count correlates *negatively*).
    pub revision_attempt: u32,
    /// Whether the revision includes a revert plan (positive signal).
    pub has_revert_plan: bool,
    /// Whether the revision includes a test plan (positive signal).
    pub has_test_plan: bool,
    /// Files touched.
    pub files_changed: u32,
    /// Lines added.
    pub lines_added: u32,
    /// Lines removed.
    pub lines_removed: u32,
    /// Local git commits squashed into the change.
    pub git_commits: u32,
    /// Number of affected build targets (paper change-feature (i)).
    pub affected_targets: u32,
    /// Whether pre-submit checks passed (paper: "status of initial
    /// tests/checks run before submitting").
    pub presubmit_passed: bool,
    /// Logical parts of the repository this change touches; overlapping
    /// parts make two changes *potentially conflicting*.
    pub parts: Vec<PartId>,
    /// Whether this change edits BUILD files (alters the build graph) —
    /// disables the analyzer's fast path.
    pub alters_build_graph: bool,
    /// Explicit emergency flag: the submitter requested the bypass lane
    /// (hotfix/rollback). Defaults to `false`; bypass-lane strategies
    /// honor it regardless of footprint.
    #[serde(default)]
    pub emergency: bool,
    /// Hidden ground truth: would this change's build steps pass against
    /// the submitted-from HEAD in isolation?
    pub intrinsic_success: bool,
    /// Hidden ground truth: the probability the outcome was drawn from
    /// (used to verify model calibration, never exposed to strategies).
    pub intrinsic_success_prob: f64,
}

impl ChangeSpec {
    /// True iff this change and `other` touch at least one common part —
    /// the paper's "potentially conflicting" relation.
    pub fn potentially_conflicts(&self, other: &ChangeSpec) -> bool {
        // Part lists are tiny (mean < 2); the quadratic scan beats set
        // construction.
        self.parts.iter().any(|p| other.parts.contains(p))
    }

    /// Total churn (lines added + removed).
    pub fn churn(&self) -> u32 {
        self.lines_added + self.lines_removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, parts: &[u32]) -> ChangeSpec {
        ChangeSpec {
            id: ChangeId(id),
            submit_time: SimTime::ZERO,
            build_duration: SimDuration::from_mins(30),
            developer: DevId(0),
            revision: id,
            revision_attempt: 0,
            has_revert_plan: false,
            has_test_plan: true,
            files_changed: 3,
            lines_added: 100,
            lines_removed: 20,
            git_commits: 2,
            affected_targets: 5,
            presubmit_passed: true,
            parts: parts.iter().map(|&p| PartId(p)).collect(),
            alters_build_graph: false,
            emergency: false,
            intrinsic_success: true,
            intrinsic_success_prob: 0.9,
        }
    }

    #[test]
    fn potential_conflict_is_part_overlap() {
        let a = spec(1, &[1, 2]);
        let b = spec(2, &[2, 3]);
        let c = spec(3, &[4]);
        assert!(a.potentially_conflicts(&b));
        assert!(b.potentially_conflicts(&a));
        assert!(!a.potentially_conflicts(&c));
        assert!(!c.potentially_conflicts(&b));
    }

    #[test]
    fn no_parts_never_conflicts() {
        let a = spec(1, &[]);
        let b = spec(2, &[1]);
        assert!(!a.potentially_conflicts(&b));
        assert!(!a.potentially_conflicts(&a));
    }

    #[test]
    fn churn_sums() {
        assert_eq!(spec(1, &[]).churn(), 120);
    }

    #[test]
    fn ids_order_by_submission() {
        assert!(ChangeId(1) < ChangeId(2));
        assert_eq!(ChangeId(7).to_string(), "C7");
    }
}
