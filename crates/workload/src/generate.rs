//! The workload generator.
//!
//! Produces a deterministic stream of [`ChangeSpec`]s: Poisson arrivals
//! at the configured rate, truncated log-normal build durations
//! (Figure 9), Zipf-distributed part footprints (which induce the
//! Figure 1 conflict curve), and ground-truth isolated outcomes drawn
//! from a logistic model over the same observable features the paper's
//! Section 7.2 models train on — that is what makes the 97%-accuracy
//! reproduction possible: outcomes genuinely depend on the features.

use crate::change::{ChangeId, ChangeSpec, DevId, DevProfile, PartId};
use crate::duration::DurationModel;
use crate::params::WorkloadParams;
use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};
use sq_sim::dist::{AliasTable, Distribution, Exponential, Pareto};
use sq_sim::{SimDuration, SimTime, Xoshiro256StarStar};

/// Number of "home" parts each team gravitates to.
const TEAM_HOME_PARTS: usize = 5;
/// Probability a touched part comes from the developer's team's home
/// parts rather than the global hot-spot distribution. Team affinity is
/// what makes same-team changes conflict more often (paper Section 7.2).
const TEAM_AFFINITY: f64 = 0.30;

/// A complete generated workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Generation parameters.
    pub params: WorkloadParams,
    /// The master seed.
    pub seed: u64,
    /// Developer population.
    pub developers: Vec<DevProfile>,
    /// Changes ordered by submission time.
    pub changes: Vec<ChangeSpec>,
}

impl Workload {
    /// The ground-truth oracle for this workload (carries the flaky-test
    /// clusters when the adversary plan enables them).
    pub fn truth(&self) -> GroundTruth {
        GroundTruth::new(self.seed, self.params.pairwise_conflict_prob)
            .with_flaky(self.params.adversary.flaky.clone())
    }

    /// The profile of a change's developer.
    pub fn developer(&self, id: DevId) -> &DevProfile {
        &self.developers[id.0 as usize]
    }

    /// Time of the last submission.
    pub fn horizon(&self) -> SimTime {
        self.changes
            .last()
            .map(|c| c.submit_time)
            .unwrap_or(SimTime::ZERO)
    }

    /// Fraction of changes that pass their own build steps in isolation
    /// (flaky-cluster failures count against a change).
    pub fn isolated_success_rate(&self) -> f64 {
        if self.changes.is_empty() {
            return 0.0;
        }
        let truth = self.truth();
        self.changes
            .iter()
            .filter(|c| truth.succeeds_alone(c))
            .count() as f64
            / self.changes.len() as f64
    }

    /// Fraction of changes that alter the build graph (compare to the
    /// paper's 7.9% iOS / 1.6% backend).
    pub fn graph_change_rate(&self) -> f64 {
        if self.changes.is_empty() {
            return 0.0;
        }
        self.changes.iter().filter(|c| c.alters_build_graph).count() as f64
            / self.changes.len() as f64
    }
}

/// Builder for [`Workload`].
///
/// ```
/// use sq_workload::{WorkloadBuilder, WorkloadParams};
///
/// let workload = WorkloadBuilder::new(WorkloadParams::ios().with_rate(200.0))
///     .seed(42)
///     .n_changes(100)
///     .build()
///     .unwrap();
/// assert_eq!(workload.changes.len(), 100);
/// // Outcomes are deterministic functions of the seed.
/// let truth = workload.truth();
/// let first = &workload.changes[0];
/// assert_eq!(truth.succeeds_alone(first), first.intrinsic_success);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    params: WorkloadParams,
    seed: u64,
    n_changes: usize,
}

impl WorkloadBuilder {
    /// Start from parameters (validated at `build`).
    pub fn new(params: WorkloadParams) -> Self {
        WorkloadBuilder {
            params,
            seed: 0,
            n_changes: 1000,
        }
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate exactly this many changes.
    pub fn n_changes(mut self, n: usize) -> Self {
        self.n_changes = n;
        self
    }

    /// Generate enough changes to span roughly `hours` of arrivals.
    pub fn duration_hours(mut self, hours: f64) -> Self {
        self.n_changes = (self.params.changes_per_hour * hours).round() as usize;
        self
    }

    /// Generate the workload.
    pub fn build(self) -> Result<Workload, String> {
        self.params.validate()?;
        let params = self.params;
        let mut master = Xoshiro256StarStar::seed_from_u64(self.seed);
        // Independent streams per concern: adding a draw to one stream
        // must not shift the others (trace stability under model edits).
        let mut dev_rng = master.split();
        let mut arrival_rng = master.split();
        let mut duration_rng = master.split();
        let mut shape_rng = master.split();
        let mut outcome_rng = master.split();
        // Split last so pre-adversary seeds keep their exact traces.
        let mut adversary_rng = master.split();

        // Developer population.
        let n_teams = (params.n_developers / 8).max(1) as u32;
        let developers: Vec<DevProfile> = (0..params.n_developers)
            .map(|i| {
                let experience = dev_rng.next_f64();
                DevProfile {
                    id: DevId(i as u32),
                    experience,
                    tenure_months: 1.0 + dev_rng.next_f64() * 96.0,
                    team: dev_rng.next_below(n_teams as u64) as u32,
                    fragile_code_paths: dev_rng.bernoulli(0.15),
                }
            })
            .collect();

        let part_table = AliasTable::zipf(params.n_parts, params.part_zipf_s);
        // Non-homogeneous arrival curves are drawn by Poisson thinning:
        // candidates arrive at the envelope (peak) rate and survive with
        // probability rate(t)/peak_rate. The constant curve keeps the
        // plain exponential-gap path — and its exact draw sequence — so
        // pre-existing seeds replay byte-identical traces.
        let max_mult = params.arrival.max_multiplier();
        let arrivals = Exponential::with_mean(3600.0 / (params.changes_per_hour * max_mult));
        let durations = DurationModel::new(&params);
        let files_dist = Pareto::new(1.0, 1.3);

        let mut changes = Vec::with_capacity(self.n_changes);
        let mut clock = SimTime::ZERO;
        for i in 0..self.n_changes {
            loop {
                clock += SimDuration::from_secs_f64(arrivals.sample(&mut arrival_rng));
                if params.arrival.is_constant() {
                    break;
                }
                let accept = params.arrival.multiplier_at(clock.as_hours_f64()) / max_mult;
                if arrival_rng.bernoulli(accept) {
                    break;
                }
            }
            let dev = &developers[shape_rng.next_below(developers.len() as u64) as usize];

            // Part footprint: geometric count around the configured mean,
            // drawn from team-home parts or the global Zipf table.
            let extra_p = 1.0 / params.mean_parts_per_change;
            let mut n_parts = 1usize;
            while !shape_rng.bernoulli(extra_p) && n_parts < 8 {
                n_parts += 1;
            }
            let home_base = (dev.team as usize * TEAM_HOME_PARTS) % params.n_parts;
            let mut parts: Vec<PartId> = Vec::with_capacity(n_parts);
            for _ in 0..n_parts {
                let p = if shape_rng.bernoulli(TEAM_AFFINITY) {
                    ((home_base + shape_rng.next_below(TEAM_HOME_PARTS as u64) as usize)
                        % params.n_parts) as u32
                } else {
                    part_table.sample(&mut shape_rng) as u32
                };
                if !parts.contains(&PartId(p)) {
                    parts.push(PartId(p));
                }
            }

            // Change shape.
            let files_changed = (files_dist.sample(&mut shape_rng).round() as u32).clamp(1, 400);
            let lines_added = (files_changed as f64 * (5.0 + shape_rng.next_f64() * 120.0)) as u32;
            let lines_removed = (lines_added as f64 * shape_rng.next_f64() * 0.8) as u32;
            let git_commits = 1 + shape_rng.next_below(9) as u32;
            let affected_targets =
                (parts.len() as u32) * (1 + shape_rng.next_below(6) as u32) + files_changed / 10;
            let revision_attempt = {
                // Mostly first attempts; geometric tail of resubmissions.
                let mut a = 0u32;
                while shape_rng.bernoulli(0.25) && a < 6 {
                    a += 1;
                }
                a
            };
            let has_test_plan = shape_rng.bernoulli(0.75 + 0.2 * dev.experience);
            let has_revert_plan = shape_rng.bernoulli(0.35 + 0.3 * dev.experience);
            let presubmit_passed = shape_rng.bernoulli(0.82 + 0.15 * dev.experience);
            let alters_build_graph = shape_rng.bernoulli(params.graph_change_fraction);

            // Isolated outcome: a logistic function of the observable
            // features — the signal the Section 7.2 model learns.
            let z = params.success_base_logit
                + 1.6 * (dev.experience - 0.5)
                + if presubmit_passed { 1.2 } else { -1.8 }
                + if has_test_plan { 0.5 } else { -0.5 }
                + if has_revert_plan { 0.3 } else { 0.0 }
                - 0.28 * (files_changed as f64).ln()
                - 0.35 * revision_attempt as f64
                - if dev.fragile_code_paths { 0.7 } else { 0.0 };
            let p_success = sigmoid(z);
            let intrinsic_success = outcome_rng.bernoulli(p_success);

            changes.push(ChangeSpec {
                id: ChangeId(i as u64),
                submit_time: clock,
                build_duration: durations.sample(&mut duration_rng),
                developer: dev.id,
                // One revision container per change in the synthetic
                // trace; the attempt counter models resubmissions.
                revision: i as u64,
                revision_attempt,
                has_revert_plan,
                has_test_plan,
                files_changed,
                lines_added,
                lines_removed,
                git_commits,
                affected_targets,
                presubmit_passed,
                parts,
                alters_build_graph,
                // No RNG draw: the synthetic trace never flags
                // emergencies, keeping every committed trajectory
                // byte-identical. Tests and benches set it explicitly.
                emergency: false,
                intrinsic_success,
                intrinsic_success_prob: p_success,
            });
        }

        apply_adversaries(&params, &mut changes, &mut adversary_rng);

        Ok(Workload {
            params,
            seed: self.seed,
            developers,
            changes,
        })
    }
}

/// Apply the enabled adversarial post-passes to the generated stream.
///
/// Runs on its own RNG split, so a benign plan leaves the trace exactly
/// as the statistical model drew it. Flaky clusters need no pass here —
/// they live in [`GroundTruth`], keyed off the final part footprints.
fn apply_adversaries(
    params: &WorkloadParams,
    changes: &mut [ChangeSpec],
    rng: &mut Xoshiro256StarStar,
) {
    if let Some(storm) = &params.adversary.revert_storm {
        // Epicenters model a just-landed bad change; the burst that
        // follows re-touches exactly its parts (reverts, fix-forwards,
        // and "me too" patches), so the concurrent potentially-
        // conflicting count spikes around the epicenter.
        let window = SimDuration::from_mins_f64(storm.window_mins);
        let mut i = 0;
        while i < changes.len() {
            if rng.bernoulli(storm.epicenter_prob) {
                let epicenter_parts = changes[i].parts.clone();
                let deadline = changes[i].submit_time + window;
                let end = (i + 1 + storm.burst).min(changes.len());
                for follower in changes[i + 1..end].iter_mut() {
                    if follower.submit_time > deadline {
                        break;
                    }
                    follower.parts = epicenter_parts.clone();
                }
                i = end; // bursts don't nest
            } else {
                i += 1;
            }
        }
    }
    if let Some(hub) = &params.adversary.hub {
        // Hub touchers additionally edit the dependency-hub parts — the
        // hottest Zipf ranks — and so potentially conflict with almost
        // every concurrent change.
        for c in changes.iter_mut() {
            if rng.bernoulli(hub.prob) {
                for p in 0..hub.span as u32 {
                    if !c.parts.contains(&PartId(p)) {
                        c.parts.push(PartId(p));
                    }
                }
            }
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(rate: f64, n: usize, seed: u64) -> Workload {
        WorkloadBuilder::new(WorkloadParams::ios().with_rate(rate))
            .seed(seed)
            .n_changes(n)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_given_seed() {
        let w1 = workload(100.0, 500, 42);
        let w2 = workload(100.0, 500, 42);
        assert_eq!(w1.changes.len(), w2.changes.len());
        for (a, b) in w1.changes.iter().zip(&w2.changes) {
            assert_eq!(a.submit_time, b.submit_time);
            assert_eq!(a.parts, b.parts);
            assert_eq!(a.intrinsic_success, b.intrinsic_success);
            assert_eq!(a.build_duration, b.build_duration);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = workload(100.0, 200, 1);
        let w2 = workload(100.0, 200, 2);
        let t1: Vec<_> = w1.changes.iter().map(|c| c.submit_time).collect();
        let t2: Vec<_> = w2.changes.iter().map(|c| c.submit_time).collect();
        assert_ne!(t1, t2);
    }

    #[test]
    fn arrival_rate_matches_configuration() {
        let w = workload(300.0, 3000, 7);
        let hours = w.horizon().as_hours_f64();
        let rate = w.changes.len() as f64 / hours;
        assert!((rate - 300.0).abs() < 25.0, "rate = {rate}");
    }

    #[test]
    fn submission_times_are_monotone() {
        let w = workload(500.0, 1000, 3);
        for pair in w.changes.windows(2) {
            assert!(pair[0].submit_time <= pair[1].submit_time);
        }
        for (i, c) in w.changes.iter().enumerate() {
            assert_eq!(c.id.0, i as u64);
        }
    }

    #[test]
    fn isolated_success_rate_is_high_but_imperfect() {
        let w = workload(100.0, 5000, 11);
        let rate = w.isolated_success_rate();
        assert!((0.75..0.95).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn graph_change_rate_matches_platform() {
        let w = workload(100.0, 20_000, 13);
        let rate = w.graph_change_rate();
        assert!((rate - 0.079).abs() < 0.01, "rate = {rate}");
        let wb = WorkloadBuilder::new(WorkloadParams::backend())
            .seed(13)
            .n_changes(20_000)
            .build()
            .unwrap();
        let rate_b = wb.graph_change_rate();
        assert!((rate_b - 0.016).abs() < 0.005, "rate = {rate_b}");
    }

    #[test]
    fn every_change_touches_at_least_one_part() {
        let w = workload(100.0, 2000, 17);
        for c in &w.changes {
            assert!(!c.parts.is_empty());
            assert!(c.parts.len() <= 8);
            assert!(c.files_changed >= 1);
        }
    }

    #[test]
    fn mean_parts_near_configuration() {
        let w = workload(100.0, 10_000, 19);
        let mean: f64 =
            w.changes.iter().map(|c| c.parts.len() as f64).sum::<f64>() / w.changes.len() as f64;
        // Deduplication pulls it slightly below the raw geometric mean.
        assert!((1.2..1.9).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn outcome_probabilities_are_calibrated() {
        // Group changes by predicted probability decile; the empirical
        // success rate in each bucket should track the bucket's mean
        // probability (the ground-truth model is self-consistent).
        let w = workload(100.0, 30_000, 23);
        let mut bucket_n = [0u32; 10];
        let mut bucket_hits = [0u32; 10];
        let mut bucket_p = [0f64; 10];
        for c in &w.changes {
            let b = ((c.intrinsic_success_prob * 10.0) as usize).min(9);
            bucket_n[b] += 1;
            bucket_p[b] += c.intrinsic_success_prob;
            if c.intrinsic_success {
                bucket_hits[b] += 1;
            }
        }
        for b in 0..10 {
            if bucket_n[b] < 600 {
                continue; // too noisy to judge
            }
            let expected = bucket_p[b] / bucket_n[b] as f64;
            let got = bucket_hits[b] as f64 / bucket_n[b] as f64;
            // Tolerance ≈ 3σ for the smallest admitted bucket.
            assert!(
                (expected - got).abs() < 0.065,
                "bucket {b}: expected {expected:.3}, got {got:.3} (n = {})",
                bucket_n[b]
            );
        }
    }

    #[test]
    fn same_team_changes_conflict_potentially_more_often() {
        let w = workload(100.0, 8000, 29);
        let mut same_team = (0u32, 0u32); // (overlapping, total)
        let mut diff_team = (0u32, 0u32);
        // Sample consecutive pairs (cheap and unbiased for this check).
        for pair in w.changes.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let ta = w.developer(a.developer).team;
            let tb = w.developer(b.developer).team;
            let bucket = if ta == tb {
                &mut same_team
            } else {
                &mut diff_team
            };
            bucket.1 += 1;
            if a.potentially_conflicts(b) {
                bucket.0 += 1;
            }
        }
        if same_team.1 > 100 && diff_team.1 > 100 {
            let rs = same_team.0 as f64 / same_team.1 as f64;
            let rd = diff_team.0 as f64 / diff_team.1 as f64;
            assert!(rs > rd, "same-team {rs:.3} vs cross-team {rd:.3}");
        }
    }

    #[test]
    fn rate_changes_only_arrival_times() {
        // Section 8.1 methodology: "the only difference with the real
        // data is the inter-arrival time between two changes in order to
        // maintain a fixed incoming rate" — same changes, different
        // spacing. Stream splitting guarantees it.
        let slow = workload(100.0, 300, 77);
        let fast = workload(500.0, 300, 77);
        for (a, b) in slow.changes.iter().zip(&fast.changes) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.parts, b.parts);
            assert_eq!(a.build_duration, b.build_duration);
            assert_eq!(a.intrinsic_success, b.intrinsic_success);
            assert_eq!(a.developer, b.developer);
            assert_eq!(a.files_changed, b.files_changed);
        }
        // But the fast trace compresses the timeline ~5×.
        let ratio = slow.horizon().as_secs_f64() / fast.horizon().as_secs_f64();
        assert!((3.5..6.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn duration_hours_sets_change_count() {
        let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(200.0))
            .duration_hours(3.0)
            .build()
            .unwrap();
        assert_eq!(w.changes.len(), 600);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = WorkloadParams::ios();
        p.n_parts = 0;
        assert!(WorkloadBuilder::new(p).build().is_err());
    }

    #[test]
    fn adversaries_never_perturb_the_baseline_streams() {
        use crate::adversary::{HubTouches, RevertStorm};
        let baseline = workload(100.0, 400, 91);
        let mut p = WorkloadParams::ios();
        p.adversary.revert_storm = Some(RevertStorm {
            epicenter_prob: 0.1,
            burst: 5,
            window_mins: 45.0,
        });
        p.adversary.hub = Some(HubTouches {
            prob: 0.25,
            span: 3,
        });
        let adversarial = WorkloadBuilder::new(p)
            .seed(91)
            .n_changes(400)
            .build()
            .unwrap();
        // The adversary passes rewrite part footprints only; every other
        // stream (arrivals, durations, outcomes, developers) replays the
        // exact baseline trace thanks to the dedicated RNG split.
        for (a, b) in baseline.changes.iter().zip(&adversarial.changes) {
            assert_eq!(a.submit_time, b.submit_time);
            assert_eq!(a.build_duration, b.build_duration);
            assert_eq!(a.intrinsic_success, b.intrinsic_success);
            assert_eq!(a.developer, b.developer);
        }
        // And the passes did fire somewhere.
        assert!(
            baseline
                .changes
                .iter()
                .zip(&adversarial.changes)
                .any(|(a, b)| a.parts != b.parts),
            "adversaries should have rewritten some footprint"
        );
    }

    #[test]
    fn revert_storm_echoes_epicenter_parts() {
        use crate::adversary::RevertStorm;
        let mut p = WorkloadParams::ios().with_rate(300.0);
        p.adversary.revert_storm = Some(RevertStorm {
            epicenter_prob: 1.0, // every non-burst change is an epicenter
            burst: 4,
            window_mins: 600.0,
        });
        let w = WorkloadBuilder::new(p)
            .seed(5)
            .n_changes(100)
            .build()
            .unwrap();
        // With certain epicenters and a generous window, every burst
        // member repeats its epicenter's exact footprint.
        for group in w.changes.chunks(5) {
            for follower in &group[1..] {
                assert_eq!(follower.parts, group[0].parts);
            }
        }
    }

    #[test]
    fn hub_touches_hit_the_hub() {
        use crate::adversary::HubTouches;
        let mut p = WorkloadParams::ios();
        p.adversary.hub = Some(HubTouches { prob: 1.0, span: 2 });
        let w = WorkloadBuilder::new(p)
            .seed(7)
            .n_changes(200)
            .build()
            .unwrap();
        for c in &w.changes {
            assert!(c.parts.contains(&PartId(0)) && c.parts.contains(&PartId(1)));
        }
        // Everything now potentially conflicts with everything.
        for pair in w.changes.windows(2) {
            assert!(pair[0].potentially_conflicts(&pair[1]));
        }
    }
}
