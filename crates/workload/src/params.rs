//! Calibrated workload parameters.
//!
//! Every constant here is traceable to a number the paper publishes; the
//! presets bundle them per monorepo platform.

use crate::adversary::AdversaryPlan;
use crate::change::Platform;
use crate::curves::ArrivalCurve;
use serde::{Deserialize, Serialize};

/// Tunable knobs of the generative model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Which monorepo this models.
    pub platform: Platform,
    /// Changes per hour (the paper sweeps 100–500).
    pub changes_per_hour: f64,
    /// Number of logical repository parts (hot-spot categories a change
    /// can touch). Parts are what make changes *potentially conflicting*.
    pub n_parts: usize,
    /// Zipf exponent of part popularity: higher ⇒ more contention on a
    /// few hot parts.
    pub part_zipf_s: f64,
    /// Mean number of parts one change touches.
    pub mean_parts_per_change: f64,
    /// Median build duration in minutes (Figure 9: ≈ 27 for iOS).
    pub duration_median_mins: f64,
    /// Log-space sigma of the duration log-normal.
    pub duration_sigma: f64,
    /// Duration cap in minutes (Figure 9 x-axis ends at 120).
    pub duration_max_mins: f64,
    /// Duration floor in minutes.
    pub duration_min_mins: f64,
    /// Probability that two *potentially conflicting* (part-overlapping)
    /// changes really conflict (Figure 1: n=2 point ⇒ ≈ 0.05).
    pub pairwise_conflict_prob: f64,
    /// Fraction of changes that alter the build graph (Section 5.2:
    /// 7.9% iOS, 1.6% backend).
    pub graph_change_fraction: f64,
    /// Number of developers in the population.
    pub n_developers: usize,
    /// Base success logit; the developer/change features shift it (see
    /// `truth::success_probability`). Calibrated so ≈85% of changes pass
    /// their own build steps in isolation.
    pub success_base_logit: f64,
    /// Shape of the arrival process over time (constant in the paper's
    /// controlled replays; diurnal spikes in the adversarial scenarios).
    pub arrival: ArrivalCurve,
    /// Adversarial generators layered on the statistical model (all off
    /// in the presets).
    pub adversary: AdversaryPlan,
}

impl WorkloadParams {
    /// The iOS monorepo preset.
    pub fn ios() -> Self {
        WorkloadParams {
            platform: Platform::Ios,
            changes_per_hour: 100.0,
            n_parts: 300,
            part_zipf_s: 0.9,
            mean_parts_per_change: 1.4,
            duration_median_mins: 27.0,
            duration_sigma: 0.55,
            duration_max_mins: 120.0,
            duration_min_mins: 4.0,
            pairwise_conflict_prob: 0.05,
            graph_change_fraction: 0.079,
            n_developers: 400,
            success_base_logit: 2.2,
            arrival: ArrivalCurve::Constant,
            adversary: AdversaryPlan::none(),
        }
    }

    /// The Android monorepo preset (slightly faster builds, similar
    /// conflict profile — Figure 9 shows near-identical CDFs).
    pub fn android() -> Self {
        WorkloadParams {
            platform: Platform::Android,
            duration_median_mins: 25.0,
            duration_sigma: 0.50,
            pairwise_conflict_prob: 0.045,
            ..Self::ios()
        }
    }

    /// The backend monorepo preset (Section 5.2's 1.6% graph-change rate).
    pub fn backend() -> Self {
        WorkloadParams {
            platform: Platform::Backend,
            duration_median_mins: 12.0,
            duration_sigma: 0.6,
            duration_max_mins: 60.0,
            duration_min_mins: 1.0,
            graph_change_fraction: 0.016,
            n_parts: 400,
            part_zipf_s: 0.9,
            ..Self::ios()
        }
    }

    /// Set the ingestion rate (changes per hour), as the paper's
    /// controlled replays do.
    pub fn with_rate(mut self, changes_per_hour: f64) -> Self {
        assert!(changes_per_hour > 0.0);
        self.changes_per_hour = changes_per_hour;
        self
    }

    /// Basic sanity checks; called by the builder.
    pub fn validate(&self) -> Result<(), String> {
        if self.changes_per_hour <= 0.0 {
            return Err("changes_per_hour must be positive".into());
        }
        if self.n_parts == 0 {
            return Err("n_parts must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.pairwise_conflict_prob) {
            return Err("pairwise_conflict_prob must be a probability".into());
        }
        if !(0.0..=1.0).contains(&self.graph_change_fraction) {
            return Err("graph_change_fraction must be a probability".into());
        }
        if self.duration_min_mins <= 0.0 || self.duration_min_mins > self.duration_median_mins {
            return Err("duration_min must be positive and below the median".into());
        }
        if self.duration_max_mins < self.duration_median_mins {
            return Err("duration_max must exceed the median".into());
        }
        if self.n_developers == 0 {
            return Err("need at least one developer".into());
        }
        self.arrival.validate()?;
        self.adversary.validate()?;
        if let Some(f) = &self.adversary.flaky {
            if let Some(p) = f.parts.iter().find(|p| p.0 as usize >= self.n_parts) {
                return Err(format!("flaky part {} is outside 0..{}", p.0, self.n_parts));
            }
        }
        if let Some(h) = &self.adversary.hub {
            if h.span > self.n_parts {
                return Err(format!(
                    "hub span {} exceeds the {} configured parts",
                    h.span, self.n_parts
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        WorkloadParams::ios().validate().unwrap();
        WorkloadParams::android().validate().unwrap();
        WorkloadParams::backend().validate().unwrap();
    }

    #[test]
    fn presets_match_paper_constants() {
        assert!((WorkloadParams::ios().graph_change_fraction - 0.079).abs() < 1e-12);
        assert!((WorkloadParams::backend().graph_change_fraction - 0.016).abs() < 1e-12);
        assert!((WorkloadParams::ios().pairwise_conflict_prob - 0.05).abs() < 1e-12);
    }

    #[test]
    fn with_rate_overrides() {
        let p = WorkloadParams::ios().with_rate(500.0);
        assert_eq!(p.changes_per_hour, 500.0);
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut p = WorkloadParams::ios();
        p.pairwise_conflict_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = WorkloadParams::ios();
        p.n_parts = 0;
        assert!(p.validate().is_err());
        let mut p = WorkloadParams::ios();
        p.duration_max_mins = 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_covers_arrival_and_adversary() {
        use crate::adversary::{FlakyClusters, HubTouches};
        use crate::change::PartId;
        let mut p = WorkloadParams::ios();
        p.arrival = ArrivalCurve::Diurnal {
            peak_multiplier: 6.0,
            peak_fraction: 0.5, // 0.5 × 6 ≥ 1
            period_hours: 8.0,
        };
        assert!(p.validate().is_err());
        let mut p = WorkloadParams::ios();
        p.adversary.flaky = Some(FlakyClusters {
            parts: vec![PartId(p.n_parts as u32)], // out of range
            failure_prob: 0.3,
        });
        assert!(p.validate().is_err());
        let mut p = WorkloadParams::ios();
        p.adversary.hub = Some(HubTouches {
            prob: 0.2,
            span: p.n_parts + 1,
        });
        assert!(p.validate().is_err());
    }
}
