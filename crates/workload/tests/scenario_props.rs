//! Property and regression tests for the scenario subsystem.
//!
//! * Manifests round-trip through serde unchanged, for every named
//!   scenario and randomized override/duration/fleet knobs.
//! * Same-seed scenario workloads serialize byte-identically — the
//!   generator side of the benchmark determinism guarantee.
//! * The diurnal arrival curve is pinned: the integral of the
//!   time-varying rate over a run equals `changes_per_hour × hours`
//!   within tolerance, the realized spike density matches the shape, and
//!   the Poisson thinning is deterministic per seed.

use proptest::prelude::*;
use sq_workload::{ArrivalCurve, ScenarioManifest, WorkloadBuilder, WorkloadParams};

fn named(idx: usize) -> ScenarioManifest {
    let matrix = ScenarioManifest::matrix();
    matrix[idx % matrix.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn manifests_round_trip_serde(
        idx in 0usize..5,
        rate in 60.0..400.0f64,
        conflict_prob in 0.01..0.2f64,
        duration in 0.25..2.0f64,
        fault_rate in 0.0..0.2f64,
        workers in 20usize..200,
    ) {
        let mut m = named(idx);
        m.overrides.changes_per_hour = Some(rate);
        m.overrides.pairwise_conflict_prob = Some(conflict_prob);
        m.duration_hours = duration;
        m.infra_fault_rate = fault_rate;
        m.workers = workers;
        let json = serde_json::to_string(&m).unwrap();
        let back: ScenarioManifest = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn same_seed_scenario_workloads_serialize_identically(
        idx in 0usize..5,
        seed in 0u64..(1u64 << 48),
    ) {
        let m = named(idx);
        let w1 = m.workload(seed, 40).unwrap();
        let w2 = m.workload(seed, 40).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&w1).unwrap(),
            serde_json::to_string(&w2).unwrap()
        );
    }
}

#[test]
fn diurnal_rate_integral_matches_configured_volume() {
    let curve = ArrivalCurve::Diurnal {
        peak_multiplier: 8.0,
        peak_fraction: 0.1,
        period_hours: 2.0,
    };
    // Analytically: the curve is normalized, so over whole periods the
    // rate integral is exactly `changes_per_hour × hours`.
    assert!((curve.integral_multiplier(6.0) - 6.0).abs() < 1e-9);
    assert!((curve.integral_multiplier(20.0) - 20.0).abs() < 1e-9);
    // Empirically: a long thinned replay realizes the configured volume.
    // n arrivals span `horizon` hours, so n must match the rate integral
    // over that horizon (±10%, ≈ 5σ of Poisson noise at n = 3000).
    let rate = 300.0;
    let mut p = WorkloadParams::ios().with_rate(rate);
    p.arrival = curve.clone();
    let n = 3000;
    let w = WorkloadBuilder::new(p)
        .seed(11)
        .n_changes(n)
        .build()
        .unwrap();
    let hours = w.horizon().as_hours_f64();
    let expected = rate * curve.integral_multiplier(hours);
    let err = (n as f64 - expected).abs() / expected;
    assert!(
        err < 0.10,
        "expected ≈{expected:.0} arrivals, got {n} ({err:.3})"
    );

    // The volume concentrates where the curve says it should: the peak
    // windows cover 10% of the time but peak_multiplier × peak_fraction
    // = 80% of the arrivals.
    let in_peak = w
        .changes
        .iter()
        .filter(|c| c.submit_time.as_hours_f64().rem_euclid(2.0) < 0.2)
        .count();
    let peak_frac = in_peak as f64 / n as f64;
    assert!(
        (peak_frac - 0.8).abs() < 0.05,
        "peak windows carry {peak_frac:.3} of arrivals, expected ≈0.8"
    );
}

#[test]
fn diurnal_thinning_is_deterministic_per_seed() {
    let mut p = WorkloadParams::ios().with_rate(200.0);
    p.arrival = ArrivalCurve::Diurnal {
        peak_multiplier: 6.0,
        peak_fraction: 0.15,
        period_hours: 0.5,
    };
    let build = |seed: u64| {
        WorkloadBuilder::new(p.clone())
            .seed(seed)
            .n_changes(300)
            .build()
            .unwrap()
    };
    let a = build(7);
    let b = build(7);
    let times =
        |w: &sq_workload::Workload| w.changes.iter().map(|c| c.submit_time).collect::<Vec<_>>();
    assert_eq!(times(&a), times(&b));
    assert_ne!(times(&a), times(&build(8)));
    // Thinning only consumes the arrival stream: the diurnal trace keeps
    // the constant-curve trace's changes (parts, durations, outcomes),
    // just on a different clock — the curve analogue of the paper's
    // "only the inter-arrival times differ" replay methodology.
    let constant = WorkloadBuilder::new(WorkloadParams::ios().with_rate(200.0))
        .seed(7)
        .n_changes(300)
        .build()
        .unwrap();
    for (x, y) in constant.changes.iter().zip(&a.changes) {
        assert_eq!(x.parts, y.parts);
        assert_eq!(x.build_duration, y.build_duration);
        assert_eq!(x.intrinsic_success, y.intrinsic_success);
    }
}
