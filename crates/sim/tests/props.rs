//! Property tests for the simulation kernel: ordering guarantees of the
//! event queue, statistics against naive references, RNG sanity.

use proptest::prelude::*;
use sq_sim::stats::Histogram;
use sq_sim::{Cdf, EventQueue, OnlineStats, Percentiles, SimTime, Xoshiro256StarStar};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn event_queue_pops_in_nondecreasing_time(times in proptest::collection::vec(0u64..1_000, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn simultaneous_events_preserve_insertion_order(n in 1usize..64, t in 0u64..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_micros(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn percentiles_match_naive_reference(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..128),
        p in 0f64..100.0,
    ) {
        let mut perc = Percentiles::new();
        for &x in &xs {
            perc.push(x);
        }
        let got = perc.percentile(p).unwrap();
        // Naive nearest-rank.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        let expected = sorted[rank.min(sorted.len()) - 1];
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn percentile_edges_match_naive_reference(
        // Few distinct values => heavy duplication, exercising ties in
        // the nearest-rank definition; length 1 exercises the singleton.
        xs in proptest::collection::vec(prop_oneof![Just(1.0f64), Just(2.0), Just(2.0), Just(5.0)], 1..32),
        p in prop_oneof![Just(0.0f64), Just(100.0f64), 0f64..100.0],
    ) {
        let mut perc = Percentiles::new();
        for &x in &xs {
            perc.push(x);
        }
        let got = perc.percentile(p).unwrap();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Naive nearest-rank: ceil(p/100 * N) 1-indexed, clamped to [1, N].
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        let expected = sorted[rank.min(sorted.len()) - 1];
        prop_assert_eq!(got, expected);
        // The boundary percentiles are exactly min and max.
        prop_assert_eq!(perc.percentile(0.0).unwrap(), sorted[0]);
        prop_assert_eq!(perc.percentile(100.0).unwrap(), sorted[sorted.len() - 1]);
        // Out-of-range p clamps rather than panics.
        prop_assert_eq!(perc.percentile(-3.0), perc.percentile(0.0));
        prop_assert_eq!(perc.percentile(250.0), perc.percentile(100.0));
    }

    #[test]
    fn cdf_is_monotone_and_bounded(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        probes in proptest::collection::vec(-2e3f64..2e3, 2..20),
    ) {
        let cdf = Cdf::from_samples(&xs);
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for &x in &sorted_probes {
            let v = cdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= last);
            last = v;
        }
        // Quantile inverts: F(Q(q)) >= q.
        let q = cdf.quantile(0.5).unwrap();
        prop_assert!(cdf.eval(q) >= 0.5);
    }

    #[test]
    fn online_stats_merge_equals_sequential(
        xs in proptest::collection::vec(-1e4f64..1e4, 1..64),
        split in 0usize..64,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        // A single observation has no sample variance — both sides must
        // agree on that, not silently read 0.0.
        match (a.variance(), whole.variance()) {
            (Some(av), Some(wv)) => prop_assert!((av - wv).abs() < 1e-3),
            (av, wv) => prop_assert_eq!(av, wv),
        }
    }

    #[test]
    fn histogram_conserves_observations(
        xs in proptest::collection::vec(-50f64..150.0, 0..100),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &x in &xs {
            h.push(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }

    #[test]
    fn rng_next_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(n) < n);
        }
    }

    #[test]
    fn rng_split_streams_disagree(seed in any::<u64>()) {
        let mut parent = Xoshiro256StarStar::seed_from_u64(seed);
        let mut child = parent.split();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64_raw()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64_raw()).collect();
        prop_assert_ne!(a, b);
    }
}
