//! Generic simulation driver.
//!
//! A simulation is a state machine that consumes timestamped events and
//! schedules new ones. The driver owns the [`EventQueue`] and hands the
//! model a [`Scheduler`] handle so the model cannot accidentally rewind
//! the clock or observe heap internals.

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Handle through which a simulation model schedules future events.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` after `delay` from now.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedule `event` at an absolute instant (clamped to now).
    pub fn at(&mut self, time: SimTime, event: E) {
        self.queue.schedule(time, event);
    }
}

/// A discrete-event simulation model.
pub trait Simulation {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at simulated time `now`, scheduling follow-ups
    /// through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);

    /// Called by [`run`] before delivering each event; returning `false`
    /// stops the simulation (e.g. a time horizon was reached). The default
    /// never stops early.
    fn keep_running(&self, _now: SimTime) -> bool {
        true
    }
}

/// Outcome of [`run`]: why the simulation stopped and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// The simulated time at which the run ended.
    pub end_time: SimTime,
    /// Total events delivered.
    pub events_handled: u64,
    /// True if the event queue drained; false if [`Simulation::keep_running`]
    /// stopped the run or the event budget was exhausted.
    pub drained: bool,
}

/// Drive `model` until the queue drains, `keep_running` returns false, or
/// `max_events` events have been delivered (a safety valve against
/// non-terminating models; pass `u64::MAX` for no limit).
pub fn run<S: Simulation>(
    model: &mut S,
    queue: &mut EventQueue<S::Event>,
    max_events: u64,
) -> RunOutcome {
    let mut handled = 0u64;
    while handled < max_events {
        let Some(next_time) = queue.peek_time() else {
            return RunOutcome {
                end_time: queue.now(),
                events_handled: handled,
                drained: true,
            };
        };
        if !model.keep_running(next_time) {
            return RunOutcome {
                end_time: queue.now(),
                events_handled: handled,
                drained: false,
            };
        }
        let (now, event) = queue.pop().expect("peeked event must pop");
        let mut sched = Scheduler { queue, now };
        model.handle(now, event, &mut sched);
        handled += 1;
    }
    RunOutcome {
        end_time: queue.now(),
        events_handled: handled,
        drained: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts down: each event schedules the next until zero.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
        horizon: SimTime,
    }

    impl Simulation for Countdown {
        type Event = ();

        fn handle(&mut self, now: SimTime, _e: (), sched: &mut Scheduler<'_, ()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(SimDuration::from_secs(1), ());
            }
        }

        fn keep_running(&self, now: SimTime) -> bool {
            now <= self.horizon
        }
    }

    #[test]
    fn runs_to_drain() {
        let mut model = Countdown {
            remaining: 5,
            fired_at: vec![],
            horizon: SimTime::MAX,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        let out = run(&mut model, &mut q, u64::MAX);
        assert!(out.drained);
        assert_eq!(out.events_handled, 6);
        assert_eq!(model.fired_at.len(), 6);
        assert_eq!(out.end_time, SimTime::from_secs(5));
    }

    #[test]
    fn horizon_stops_early() {
        let mut model = Countdown {
            remaining: 1000,
            fired_at: vec![],
            horizon: SimTime::from_secs(3),
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        let out = run(&mut model, &mut q, u64::MAX);
        assert!(!out.drained);
        // Events at t=0,1,2,3 are delivered; the one at t=4 is beyond.
        assert_eq!(out.events_handled, 4);
    }

    #[test]
    fn event_budget_stops_runaway_models() {
        let mut model = Countdown {
            remaining: u32::MAX,
            fired_at: vec![],
            horizon: SimTime::MAX,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        let out = run(&mut model, &mut q, 10);
        assert!(!out.drained);
        assert_eq!(out.events_handled, 10);
    }

    #[test]
    fn scheduler_now_matches_delivery_time() {
        struct Check;
        impl Simulation for Check {
            type Event = SimTime;
            fn handle(&mut self, now: SimTime, expected: SimTime, _s: &mut Scheduler<'_, SimTime>) {
                assert_eq!(now, expected);
            }
        }
        let mut q = EventQueue::new();
        for s in [4u64, 1, 9, 2] {
            q.schedule(SimTime::from_secs(s), SimTime::from_secs(s));
        }
        let out = run(&mut Check, &mut q, u64::MAX);
        assert_eq!(out.events_handled, 4);
    }
}
