//! # sq-sim — deterministic discrete-event simulation kernel
//!
//! The evaluation in *Keeping Master Green at Scale* (EuroSys '19) replays
//! nine months of production changes through a controlled environment at
//! fixed ingestion rates (Section 8.1). This crate provides the substrate
//! for that controlled environment:
//!
//! * a microsecond-resolution simulated clock ([`SimTime`], [`SimDuration`]),
//! * a deterministic event queue with stable FIFO tie-breaking
//!   ([`event::EventQueue`]) and a generic simulation driver
//!   ([`engine::Simulation`], [`engine::run`]),
//! * a fully deterministic, seedable random-number generator
//!   ([`rng::Xoshiro256StarStar`]) that does not depend on platform entropy,
//! * the probability distributions used by the workload model
//!   ([`dist`]): exponential inter-arrival times, log-normal build
//!   durations, Bernoulli outcomes, and an alias-method sampler for
//!   weighted discrete choices,
//! * streaming and batch statistics ([`stats`]): Welford online moments,
//!   exact percentiles, and empirical CDFs used to print the paper's
//!   figures.
//!
//! Everything in this crate is deterministic given a seed: two runs with
//! the same seed produce bit-identical event orders, which is what makes
//! the cross-strategy comparisons in the benchmark harness meaningful
//! (every strategy sees the exact same change trace).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{run, Scheduler, Simulation};
pub use event::EventQueue;
pub use rng::Xoshiro256StarStar;
pub use stats::{Cdf, OnlineStats, Percentiles};
pub use time::{SimDuration, SimTime};
