//! Deterministic random number generation.
//!
//! The benchmark harness must replay the *same* change trace through every
//! strategy (Section 8.1 of the paper: "we selected the above changes, and
//! ingested them into our system at different rates"). That requires an RNG
//! that is (a) seedable, (b) platform-independent, and (c) splittable so
//! each subsystem (arrivals, durations, outcomes) consumes an independent
//! stream and adding draws to one does not perturb the others.
//!
//! We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
//! rather than relying on `rand`'s feature-gated small RNGs, so the exact
//! bit stream is pinned by this crate. The generator implements
//! [`rand::RngCore`], so all of `rand`'s adapters still work on top.

use rand::RngCore;

/// SplitMix64: used to expand a 64-bit seed into xoshiro's 256-bit state.
///
/// This is the seeding procedure recommended by the xoshiro authors; it
/// guarantees the state is never all-zero for any seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produce the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: a fast, high-quality 64-bit PRNG with 256 bits of state
/// and a period of 2^256 − 1.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Produce the next 64-bit output.
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Jump ahead by 2^128 steps, producing a stream independent of the
    /// parent. Used to derive per-subsystem streams from one master seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64_raw();
            }
        }
        self.s = s;
    }

    /// Derive an independent child stream (jump-based splitting).
    pub fn split(&mut self) -> Xoshiro256StarStar {
        let child = self.clone();
        self.jump();
        child
    }

    /// A uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; (2^53 values) / 2^53 is uniform in [0,1).
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)` using Lemire's multiply-shift with
    /// rejection to remove modulo bias. Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        loop {
            let x = self.next_u64_raw();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone: low < n. Accept unless in the biased region.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.next_below(xs.len() as u64) as usize]
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the SplitMix64 reference code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(sm.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(sm.next_u64(), 0x06C45D188009454F);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64_raw()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64_raw()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let mut parent1 = Xoshiro256StarStar::seed_from_u64(7);
        let mut parent2 = Xoshiro256StarStar::seed_from_u64(7);
        let mut child1 = parent1.split();
        let mut child2 = parent2.split();
        // Consuming the parents differently must not change child output.
        for _ in 0..100 {
            parent1.next_u64_raw();
        }
        for _ in 0..3 {
            parent2.next_u64_raw();
        }
        for _ in 0..100 {
            assert_eq!(child1.next_u64_raw(), child2.next_u64_raw());
        }
    }

    #[test]
    fn split_child_differs_from_next_parent_stream() {
        let mut parent = Xoshiro256StarStar::seed_from_u64(9);
        let mut child = parent.split();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64_raw()).collect();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64_raw()).collect();
        assert_ne!(c, p);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Xoshiro256StarStar::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = Xoshiro256StarStar::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let x = r.next_below(10);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 ± a generous tolerance.
            assert!((8_500..11_500).contains(&c), "count = {c}");
        }
    }

    #[test]
    fn bernoulli_edges() {
        let mut r = Xoshiro256StarStar::seed_from_u64(6);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let mut r = Xoshiro256StarStar::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256StarStar::seed_from_u64(10);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Deterministic: a second generator with the same seed agrees.
        let mut r2 = Xoshiro256StarStar::seed_from_u64(11);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn choose_returns_member() {
        let mut r = Xoshiro256StarStar::seed_from_u64(12);
        let xs = [1, 2, 3, 4, 5];
        for _ in 0..100 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }
}
