//! Deterministic future-event queue.
//!
//! A classic discrete-event simulation calendar: a min-heap ordered by
//! `(time, sequence)` where the sequence number is assigned at insertion.
//! The sequence tie-break makes simultaneous events pop in FIFO order,
//! which removes the last source of nondeterminism from the simulator —
//! `BinaryHeap` alone has unspecified ordering among equal keys.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: event `E` due at `time`, inserted as the `seq`-th
/// entry overall.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant are delivered in insertion order.
/// Scheduling an event in the past (before the last popped time) is allowed
/// and delivers it at the current front of the queue; the simulation clock
/// never moves backwards.
///
/// ```
/// use sq_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at the origin.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the last popped event,
    /// or zero if nothing has been popped yet.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Times earlier than `now()`
    /// are clamped to `now()` so the clock stays monotone.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "clock went backwards");
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Discard every pending event for which `keep` returns `false`.
    ///
    /// O(n log n); used sparingly (e.g. when a simulation is reset).
    /// Relative order of retained simultaneous events is preserved because
    /// sequence numbers are retained.
    pub fn retain<F: FnMut(&E) -> bool>(&mut self, mut keep: F) {
        let entries: Vec<Entry<E>> = std::mem::take(&mut self.heap).into_vec();
        for e in entries {
            if keep(&e.event) {
                self.heap.push(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.pop();
        // Scheduling before now() must not rewind the clock.
        q.schedule(SimTime::from_secs(1), "clamped");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "clamped");
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn retain_filters_and_preserves_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        q.retain(|&i| i % 2 == 0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        let (t1, _) = q.pop().unwrap();
        q.schedule(t1 + SimDuration::from_secs(1), 2);
        q.schedule(t1 + SimDuration::from_millis(500), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }
}
