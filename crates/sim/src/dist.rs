//! Probability distributions for the workload model.
//!
//! The paper's controlled evaluation needs three random inputs: change
//! inter-arrival times (Poisson process ⇒ [`Exponential`] gaps at 100–500
//! changes/hour), build durations (a long-tailed distribution whose CDF
//! matches Figure 9 ⇒ truncated [`LogNormal`]), and categorical choices
//! (which targets a change touches ⇒ [`AliasTable`] over a hotspot
//! distribution). All samplers draw from the crate's deterministic
//! [`Xoshiro256StarStar`] generator.

use crate::rng::Xoshiro256StarStar;

/// A distribution over `f64` that can be sampled with the crate RNG.
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64;
}

/// The exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Sampled by inverse transform: `-ln(1-U)/λ`.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create from a rate parameter. Panics if `lambda` is not positive
    /// and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "exponential rate must be positive, got {lambda}"
        );
        Exponential { lambda }
    }

    /// Create from the mean (`1/λ`).
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        // 1 - U is in (0, 1], so ln is finite.
        -(1.0 - rng.next_f64()).ln() / self.lambda
    }
}

/// The normal distribution, sampled by the Marsaglia polar method.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create from mean and standard deviation. Panics on non-finite
    /// parameters or negative sigma.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        Normal { mu, sigma }
    }

    /// One standard normal draw.
    fn standard(rng: &mut Xoshiro256StarStar) -> f64 {
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        self.mu + self.sigma * Self::standard(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used for build durations — the Figure 9 CDF (P50 ≈ 27 min with a tail
/// to 120 min) is well matched by a log-normal truncated at a maximum.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Create from the underlying normal's parameters (log-space).
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Create from the target *median* and the log-space sigma. The median
    /// of `exp(N(mu, s))` is `exp(mu)`, which makes calibration to a CDF's
    /// P50 direct.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0);
        Self::new(median.ln(), sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Clamp another distribution's samples into `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct Truncated<D> {
    inner: D,
    lo: f64,
    hi: f64,
}

impl<D: Distribution> Truncated<D> {
    /// Wrap `inner`, clamping samples to `[lo, hi]`. Panics if `lo > hi`.
    pub fn new(inner: D, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "truncation bounds out of order");
        Truncated { inner, lo, hi }
    }
}

impl<D: Distribution> Distribution for Truncated<D> {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

/// A continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create from bounds. Panics if `lo > hi` or bounds are non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
}

/// A Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Used for hotspot modeling: a small number of build targets receive most
/// edits, which is what produces the conflict rates in Figure 1.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Create from scale and shape. Panics unless both are positive.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0);
        Pareto { x_min, alpha }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        // Inverse transform: x_min / U^{1/alpha}.
        let u = 1.0 - rng.next_f64(); // in (0, 1]
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// A Bernoulli distribution: 1.0 with probability `p`, else 0.0.
///
/// The fault-injection layer's distributional face: flake-rate sweeps
/// draw per-attempt infra-fault indicators from it, and `p` is the
/// flake rate the bench binaries iterate over.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Create from a success probability. Panics unless `p` is a
    /// probability in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "bernoulli probability must be in [0,1], got {p}"
        );
        Bernoulli { p }
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draw a boolean directly.
    pub fn draw(&self, rng: &mut Xoshiro256StarStar) -> bool {
        // p = 0 must never fire and p = 1 must always fire, regardless
        // of the rng's exact [0,1) draw.
        self.p > 0.0 && rng.next_f64() < self.p
    }
}

impl Distribution for Bernoulli {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        if self.draw(rng) {
            1.0
        } else {
            0.0
        }
    }
}

/// The Poisson distribution over event counts with mean `lambda`.
///
/// Knuth's product-of-uniforms method for small `λ`; above 30 a normal
/// approximation (clamped at zero) keeps the cost bounded.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create from the mean count. Panics if `lambda` is negative or not
    /// finite (zero is allowed: the count is then always zero).
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson mean must be non-negative, got {lambda}"
        );
        Poisson { lambda }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Draw a count directly.
    pub fn draw(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        if self.lambda <= 0.0 {
            return 0;
        }
        if self.lambda > 30.0 {
            // Normal approximation via Box–Muller, clamped at zero.
            let u1 = rng.next_f64().max(1e-12);
            let u2 = rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            return (self.lambda + z * self.lambda.sqrt()).round().max(0.0) as u64;
        }
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

impl Distribution for Poisson {
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        self.draw(rng) as f64
    }
}

/// Walker's alias method: O(1) sampling from a fixed discrete distribution
/// after O(n) preprocessing.
///
/// Used to pick which logical part of the repository a change touches,
/// weighted by per-target popularity (a Zipf-like profile).
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build from non-negative weights (not necessarily normalized).
    /// Panics if the slice is empty or all weights are zero/non-finite.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must sum to a positive finite value"
        );
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical residue: anything left is exactly 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Build a Zipf(`s`) table over `n` ranks (rank 0 most popular).
    pub fn zipf(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        Self::new(&weights)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True iff the table has no categories (never: `new` panics on empty).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        let i = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(0xDEADBEEF)
    }

    fn sample_mean<D: Distribution>(d: &D, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::with_mean(7.0);
        let m = sample_mean(&d, 200_000);
        assert!((m - 7.0).abs() < 0.1, "mean = {m}");
        assert!((d.mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::new(2.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        Exponential::new(0.0);
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0);
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::with_median(27.0, 0.6);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[50_000];
        assert!((median - 27.0).abs() < 1.0, "median = {median}");
    }

    #[test]
    fn truncated_respects_bounds() {
        let d = Truncated::new(LogNormal::with_median(27.0, 1.0), 1.0, 120.0);
        let mut r = rng();
        for _ in 0..50_000 {
            let x = d.sample(&mut r);
            assert!((1.0..=120.0).contains(&x));
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((2.0..6.0).contains(&x));
        }
        let m = sample_mean(&d, 100_000);
        assert!((m - 4.0).abs() < 0.02, "mean = {m}");
    }

    #[test]
    fn pareto_exceeds_scale() {
        let d = Pareto::new(1.5, 2.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 1.5);
        }
    }

    #[test]
    fn bernoulli_matches_rate() {
        let d = Bernoulli::new(0.3);
        let m = sample_mean(&d, 200_000);
        assert!((m - 0.3).abs() < 0.005, "rate = {m}");
        assert!((d.p() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_extremes_are_exact() {
        let never = Bernoulli::new(0.0);
        let always = Bernoulli::new(1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(!never.draw(&mut r));
            assert!(always.draw(&mut r));
        }
    }

    #[test]
    #[should_panic]
    fn bernoulli_rejects_out_of_range() {
        Bernoulli::new(1.5);
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let mut r = rng();
        let mut counts = [0u32; 4];
        let n = 400_000;
        for _ in 0..n {
            counts[t.sample(&mut r)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.005,
                "category {i}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    fn alias_table_single_category() {
        let t = AliasTable::new(&[5.0]);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(t.sample(&mut r), 0);
        }
    }

    #[test]
    fn alias_table_handles_zero_weights() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut r = rng();
        for _ in 0..10_000 {
            assert_eq!(t.sample(&mut r), 1);
        }
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let t = AliasTable::zipf(10, 1.0);
        let mut r = rng();
        let mut counts = [0u32; 10];
        for _ in 0..200_000 {
            counts[t.sample(&mut r)] += 1;
        }
        // Rank 0 strictly dominates rank 9.
        assert!(counts[0] > counts[9] * 5);
        // Broadly decreasing (allow sampling noise between neighbours).
        assert!(counts[0] > counts[4]);
        assert!(counts[2] > counts[8]);
    }

    #[test]
    #[should_panic]
    fn alias_table_rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn poisson_mean_and_determinism() {
        let mut r = rng();
        let n = 20_000;
        let small = Poisson::new(4.5);
        let mean: f64 = (0..n).map(|_| small.draw(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.5).abs() < 0.1, "mean = {mean}");
        // Large-lambda branch (normal approximation).
        let big = Poisson::new(60.0);
        let mean_big: f64 = (0..n).map(|_| big.draw(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean_big - 60.0).abs() < 1.0, "mean = {mean_big}");
        // Zero mean never fires, and same-seed streams agree.
        assert_eq!(Poisson::new(0.0).draw(&mut r), 0);
        let mut a = Xoshiro256StarStar::seed_from_u64(9);
        let mut b = Xoshiro256StarStar::seed_from_u64(9);
        let va: Vec<u64> = (0..64).map(|_| small.draw(&mut a)).collect();
        let vb: Vec<u64> = (0..64).map(|_| small.draw(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
