//! Simulated time: instants and durations with microsecond resolution.
//!
//! The simulator measures everything in integer microseconds so that event
//! ordering is exact (no floating-point comparison hazards) and arithmetic
//! is total. The paper's workloads span hours-long builds over week-long
//! traces; `u64` microseconds comfortably covers ~584k years.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated timeline, measured in microseconds from the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is ever scheduled here.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60 * 1_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600 * 1_000_000)
    }

    /// Raw microseconds since the simulation origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Minutes since the origin, as a float (for reporting only).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// Hours since the origin, as a float (for reporting only).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future, which keeps
    /// bookkeeping code total when events race on the same timestamp.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Construct from fractional minutes (see [`Self::from_secs_f64`]).
    pub fn from_mins_f64(m: f64) -> Self {
        Self::from_secs_f64(m * 60.0)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional minutes (for reporting only).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// Fractional hours (for reporting only).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600e6
    }

    /// True iff this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us < 1_000 {
            write!(f, "{us}us")
        } else if us < 1_000_000 {
            write!(f, "{:.1}ms", us as f64 / 1e3)
        } else if us < 60_000_000 {
            write!(f, "{:.1}s", us as f64 / 1e6)
        } else if us < 3_600_000_000 {
            write!(f, "{:.1}min", us as f64 / 60e6)
        } else {
            write!(f, "{:.2}h", us as f64 / 3_600e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimTime::from_hours(1).as_micros(), 3_600_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_hours(2).as_hours_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(5);
        assert_eq!((t + d).as_micros(), 15_000_000);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!((d + d).as_secs_f64(), 10.0);
        assert_eq!((d * 3).as_secs_f64(), 15.0);
        assert_eq!((d / 5).as_secs_f64(), 1.0);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::ZERO.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_micros(1))
            .is_some());
    }

    #[test]
    fn float_construction_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_mins_f64(0.5).as_micros(), 30_000_000);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.0ms");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42.0s");
        assert_eq!(SimDuration::from_mins(30).to_string(), "30.0min");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3.00h");
    }

    #[test]
    fn ordering_is_total_on_time() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert!(SimTime::ZERO < a);
        assert!(b < SimTime::MAX);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_mins(30);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_hours(1));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }
}
