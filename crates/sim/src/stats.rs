//! Statistics used by the evaluation harness.
//!
//! Every figure in the paper's Section 8 is either a CDF (Figs. 9, 10), a
//! percentile grid (Fig. 11), or a normalized mean (Figs. 12, 13). This
//! module provides: Welford's online mean/variance ([`OnlineStats`]), exact
//! sample percentiles ([`Percentiles`]), and empirical CDFs evaluated at
//! arbitrary points ([`Cdf`]).

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for streaming mean and variance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean. `None` if empty — a silent 0.0 is indistinguishable
    /// from a genuine zero-mean sample.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.mean)
        }
    }

    /// Unbiased sample variance. `None` with fewer than two observations
    /// (the estimator is undefined there, not zero).
    pub fn variance(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some(self.m2 / (self.n - 1) as f64)
        }
    }

    /// Sample standard deviation. `None` with fewer than two observations.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact sample percentiles over a collected batch.
///
/// Uses the nearest-rank definition on the sorted sample, which is what the
/// paper's P50/P95/P99 turnaround grids report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Percentiles {
    sorted: Vec<f64>,
    dirty: bool,
}

impl Percentiles {
    /// An empty batch.
    pub fn new() -> Self {
        Percentiles {
            sorted: Vec::new(),
            dirty: false,
        }
    }

    /// Pre-sized empty batch.
    pub fn with_capacity(n: usize) -> Self {
        Percentiles {
            sorted: Vec::with_capacity(n),
            dirty: false,
        }
    }

    /// Add one observation. Non-finite values are rejected (ignored) so a
    /// stray NaN cannot poison the sort.
    pub fn push(&mut self, x: f64) {
        if x.is_finite() {
            self.sorted.push(x);
            self.dirty = true;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// True iff no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
            self.dirty = false;
        }
    }

    /// The `p`-th percentile, `p` in [0, 100]. Returns `None` if empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank: ceil(p/100 * N), 1-indexed.
        let n = self.sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        Some(self.sorted[rank.min(n) - 1])
    }

    /// Convenience: (P50, P95, P99).
    pub fn p50_p95_p99(&mut self) -> Option<(f64, f64, f64)> {
        Some((
            self.percentile(50.0)?,
            self.percentile(95.0)?,
            self.percentile(99.0)?,
        ))
    }

    /// Sample mean. `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Build an empirical CDF from this batch.
    pub fn cdf(&mut self) -> Cdf {
        self.ensure_sorted();
        Cdf {
            sorted: self.sorted.clone(),
        }
    }
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from a batch of samples (non-finite values dropped).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Cdf { sorted }
    }

    /// Number of underlying samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// `P(X <= x)` under the empirical distribution.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let le = self.sorted.partition_point(|&s| s <= x);
        le as f64 / self.sorted.len() as f64
    }

    /// Evaluate the CDF at each of `points`, returning `(x, F(x))` pairs —
    /// the series format the figure binaries print.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.eval(x))).collect()
    }

    /// The empirical quantile function (inverse CDF) at `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil()).max(1.0) as usize;
        Some(self.sorted[rank.min(n) - 1])
    }
}

/// A fixed-width histogram for quick textual summaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// `bins` equal-width bins covering `[lo, hi)`. Panics unless
    /// `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi && bins > 0);
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Bin counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.stddev(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn online_stats_single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), Some(3.0));
        // Sample variance needs two observations.
        assert_eq!(s.variance(), None);
        assert_eq!(s.stddev(), None);
    }

    #[test]
    fn percentiles_mean_empty_vs_filled() {
        let mut p = Percentiles::new();
        assert_eq!(p.mean(), None);
        p.push(2.0);
        p.push(4.0);
        assert_eq!(p.mean(), Some(3.0));
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_eq!(p.percentile(50.0), Some(50.0));
        assert_eq!(p.percentile(95.0), Some(95.0));
        assert_eq!(p.percentile(99.0), Some(99.0));
        assert_eq!(p.percentile(100.0), Some(100.0));
        assert_eq!(p.percentile(0.0), Some(1.0));
    }

    #[test]
    fn percentiles_reject_nan() {
        let mut p = Percentiles::new();
        p.push(f64::NAN);
        p.push(1.0);
        assert_eq!(p.count(), 1);
        assert_eq!(p.percentile(50.0), Some(1.0));
    }

    #[test]
    fn percentiles_empty() {
        let mut p = Percentiles::new();
        assert_eq!(p.percentile(50.0), None);
        assert!(p.p50_p95_p99().is_none());
    }

    #[test]
    fn percentiles_interleaved_push_and_query() {
        let mut p = Percentiles::new();
        p.push(10.0);
        assert_eq!(p.percentile(50.0), Some(10.0));
        p.push(20.0);
        p.push(0.0);
        assert_eq!(p.percentile(50.0), Some(10.0));
        assert_eq!(p.percentile(100.0), Some(20.0));
    }

    #[test]
    fn cdf_eval() {
        let c = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(4.0), 1.0);
        assert_eq!(c.eval(100.0), 1.0);
    }

    #[test]
    fn cdf_quantile_inverts_eval() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let c = Cdf::from_samples(&samples);
        assert_eq!(c.quantile(0.5), Some(500.0));
        assert_eq!(c.quantile(0.999), Some(999.0));
        assert_eq!(c.quantile(1.0), Some(1000.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
    }

    #[test]
    fn cdf_series_shape() {
        let c = Cdf::from_samples(&[5.0, 10.0]);
        let s = c.series(&[0.0, 5.0, 10.0]);
        assert_eq!(s, vec![(0.0, 0.0), (5.0, 0.5), (10.0, 1.0)]);
    }

    #[test]
    fn cdf_empty() {
        let c = Cdf::from_samples(&[]);
        assert_eq!(c.eval(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 55.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
    }
}
