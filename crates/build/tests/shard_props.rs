//! Property tests for the target-graph partitioner: on arbitrary
//! generated DAGs, a shard assignment must be a true partition (every
//! target in exactly one shard, sizes summing to the target count),
//! deterministic across independent runs and across threads, and — for
//! the top-level-project rule — every dependency edge whose endpoints
//! land in different shards must appear in the recorded cross-shard
//! metadata (and none that doesn't). Connected-component partitions must
//! never record a cross edge, and every edge must connect two targets of
//! the same component.

use proptest::prelude::*;
use sq_build::shard::{ShardRule, TargetPartition};
use sq_build::{BuildGraph, RuleKind, Target, TargetName};

/// Build an acyclic graph of `n` targets spread over `n_projects`
/// top-level projects; `dep_bits` linearly encodes "target i depends on
/// target j" for j < i (acyclic by construction).
fn dag(n: usize, n_projects: usize, dep_bits: &[bool]) -> BuildGraph {
    let name = |i: usize| {
        let proj = i % n_projects.max(1);
        TargetName::resolve(&format!("//proj{proj}/pkg{i}:t{i}"), "").unwrap()
    };
    let mut targets = Vec::new();
    let mut bit = 0usize;
    for i in 0..n {
        let mut deps = Vec::new();
        for j in 0..i {
            if dep_bits.get(bit).copied().unwrap_or(false) {
                deps.push(name(j));
            }
            bit += 1;
        }
        targets.push(Target::new(name(i), RuleKind::Library, Vec::new(), deps));
    }
    BuildGraph::from_targets(targets).unwrap()
}

fn arb_graph() -> impl Strategy<Value = BuildGraph> {
    // 24 targets need at most 24·23/2 = 276 dependency bits; `dag`
    // reads only the prefix it needs.
    (
        1usize..24,
        1usize..6,
        proptest::collection::vec(any::<bool>(), 276..277),
    )
        .prop_map(|(n, projects, dep_bits)| dag(n, projects, &dep_bits))
}

fn assert_is_partition(g: &BuildGraph, p: &TargetPartition) {
    // Covering: every target has a shard, and every assigned shard id is
    // a real shard.
    assert_eq!(p.n_targets(), g.len());
    for name in g.names() {
        let s = p.shard_of_target(name).expect("every target is assigned");
        assert!((s as usize) < p.n_shards(), "shard id out of range");
    }
    // Disjoint is structural (one assignment per target); the sizes must
    // account for every target exactly once.
    assert_eq!(p.shard_sizes().iter().sum::<usize>(), g.len());
    assert_eq!(p.shard_sizes().len(), p.n_shards());
    assert_eq!(p.shard_names().len(), p.n_shards());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn assignment_is_a_true_partition(g in arb_graph()) {
        for rule in [ShardRule::ConnectedComponents, ShardRule::TopLevelProject] {
            let p = TargetPartition::new(&g, rule);
            assert_is_partition(&g, &p);
        }
    }

    #[test]
    fn deterministic_across_runs_and_threads(g in arb_graph()) {
        for rule in [ShardRule::ConnectedComponents, ShardRule::TopLevelProject] {
            let base = TargetPartition::new(&g, rule);
            // Same thread, fresh computation.
            let again = TargetPartition::new(&g, rule);
            prop_assert_eq!(base.assignments(), again.assignments());
            prop_assert_eq!(base.shard_names(), again.shard_names());
            prop_assert_eq!(base.cross_edges(), again.cross_edges());
            // Other threads: hash-state and allocator differences must
            // not leak into the assignment.
            let mut handles = Vec::new();
            for _ in 0..4 {
                let g = g.clone();
                handles.push(std::thread::spawn(move || {
                    let p = TargetPartition::new(&g, rule);
                    (
                        p.assignments().to_vec(),
                        p.shard_names().to_vec(),
                        p.cross_edges().to_vec(),
                    )
                }));
            }
            for h in handles {
                let (assign, names, edges) = h.join().unwrap();
                prop_assert_eq!(base.assignments(), &assign[..]);
                prop_assert_eq!(base.shard_names(), &names[..]);
                prop_assert_eq!(base.cross_edges(), &edges[..]);
            }
        }
    }

    #[test]
    fn cross_shard_edges_are_exactly_recorded(g in arb_graph()) {
        let p = TargetPartition::new(&g, ShardRule::TopLevelProject);
        // Oracle: walk every dependency edge and classify it.
        let mut expected = Vec::new();
        for t in g.targets() {
            let a = p.id_of(&t.name).unwrap();
            for d in &t.deps {
                let b = p.id_of(d).unwrap();
                if p.shard_of_id(a) != p.shard_of_id(b) {
                    expected.push((a, b));
                }
            }
        }
        expected.sort_unstable();
        let recorded: Vec<(u32, u32)> =
            p.cross_edges().iter().map(|e| (e.from, e.to)).collect();
        prop_assert_eq!(recorded, expected);
        // And each recorded edge carries the endpoints' true shards.
        for e in p.cross_edges() {
            prop_assert_eq!(e.from_shard, p.shard_of_id(e.from));
            prop_assert_eq!(e.to_shard, p.shard_of_id(e.to));
            prop_assert_ne!(e.from_shard, e.to_shard);
        }
    }

    #[test]
    fn components_have_no_cross_edges_and_respect_deps(g in arb_graph()) {
        let p = TargetPartition::new(&g, ShardRule::ConnectedComponents);
        prop_assert!(p.cross_edges().is_empty());
        // Every dependency edge stays inside one component.
        for t in g.targets() {
            let a = p.shard_of_target(&t.name).unwrap();
            for d in &t.deps {
                prop_assert_eq!(a, p.shard_of_target(d).unwrap());
            }
        }
    }
}
