//! Property tests for the interned-bitset layer: on arbitrary target
//! graphs and arbitrary pairs of patches, the bitset Step-2 intersection
//! must agree exactly with the string-keyed `AffectedSet` oracle, and the
//! interned state comparison must agree with the §5.2 fast path whenever
//! the fast path applies. The Figure-8 counterexample is pinned as a
//! fixture: disjoint interned name sets do *not* mean independence —
//! the union-graph walk still sees the dependency coupling.

use proptest::prelude::*;
use sq_build::bitset::{BitSet, InternedAffected, Interner};
use sq_build::conflict::{fast_path_conflict, union_graph_conflict};
use sq_build::{AffectedSet, SnapshotAnalysis, TargetName};
use sq_vcs::{FileOp, ObjectStore, Patch, RepoPath, Tree};
use std::collections::HashSet;

fn p(s: &str) -> RepoPath {
    RepoPath::new(s).unwrap()
}

/// Build a workspace of `n_pkgs` single-target packages; `dep_bits`
/// linearly encodes "pkg i depends on pkg j" for j < i (acyclic by
/// construction).
fn workspace(n_pkgs: usize, dep_bits: &[bool]) -> (Tree, ObjectStore) {
    let mut store = ObjectStore::new();
    let mut tree = Tree::new();
    let mut bit = 0usize;
    for i in 0..n_pkgs {
        let mut deps = Vec::new();
        for j in 0..i {
            if dep_bits.get(bit).copied().unwrap_or(false) {
                deps.push(format!("\"//pkg{j}:p{j}\""));
            }
            bit += 1;
        }
        let build = format!(
            "library(name = \"p{i}\", srcs = [\"s.rs\"], deps = [{}])",
            deps.join(", ")
        );
        let bid = store.put(build.into_bytes());
        tree.insert(p(&format!("pkg{i}/BUILD")), bid);
        let sid = store.put(format!("src-{i}-v0").into_bytes());
        tree.insert(p(&format!("pkg{i}/s.rs")), sid);
    }
    (tree, store)
}

/// A patch editing the sources of the selected packages; when `add_dep`
/// names a package other than 0, that package's BUILD is rewritten to
/// depend on pkg0 (a graph-altering, Fig.-8-style edit).
fn patch(n_pkgs: usize, edits: &[u8], rev: &str, add_dep: Option<usize>) -> Patch {
    let mut ops = Vec::new();
    let mut seen = HashSet::new();
    for &e in edits {
        let i = e as usize % n_pkgs;
        if seen.insert(i) {
            ops.push(FileOp::Write {
                path: p(&format!("pkg{i}/s.rs")),
                content: format!("src-{i}-{rev}"),
            });
        }
    }
    if let Some(i) = add_dep {
        if i != 0 && i < n_pkgs && seen.insert(n_pkgs + i) {
            ops.push(FileOp::Write {
                path: p(&format!("pkg{i}/BUILD")),
                content: format!(
                    "library(name = \"p{i}\", srcs = [\"s.rs\"], deps = [\"//pkg0:p0\"])"
                ),
            });
        }
    }
    Patch::from_ops(ops)
}

/// The string-keyed oracle for the fast-path comparison: a target
/// affected by both sides with different resulting states.
fn oracle_disagreement(da: &AffectedSet, db: &AffectedSet) -> bool {
    da.iter()
        .any(|(name, state)| db.get(name).is_some_and(|other| other != state))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn bitset_ops_agree_with_hashset(
        xs in proptest::collection::vec(any::<u16>(), 0..60),
        ys in proptest::collection::vec(any::<u16>(), 0..60),
    ) {
        let sx: HashSet<u32> = xs.iter().map(|&v| u32::from(v)).collect();
        let sy: HashSet<u32> = ys.iter().map(|&v| u32::from(v)).collect();
        let bx: BitSet = sx.iter().copied().collect();
        let by: BitSet = sy.iter().copied().collect();
        prop_assert_eq!(bx.len(), sx.len());
        prop_assert_eq!(bx.is_empty(), sx.is_empty());
        prop_assert_eq!(bx.intersects(&by), !sx.is_disjoint(&sy));
        prop_assert_eq!(by.intersects(&bx), bx.intersects(&by));
        let mut want: Vec<u32> = sx.intersection(&sy).copied().collect();
        want.sort_unstable();
        prop_assert_eq!(bx.intersection(&by).collect::<Vec<_>>(), want);
        for &v in sx.iter().take(8) {
            prop_assert!(bx.contains(v));
        }
        let mut bu = bx.clone();
        bu.union_with(&by);
        let su: HashSet<u32> = sx.union(&sy).copied().collect();
        prop_assert_eq!(bu.len(), su.len());
        prop_assert_eq!(bu.iter().collect::<HashSet<u32>>(), su);
    }

    #[test]
    fn interned_intersection_agrees_with_eq6_oracle(
        n_pkgs in 2usize..6,
        dep_bits in proptest::collection::vec(any::<bool>(), 10..11),
        edits_a in proptest::collection::vec(any::<u8>(), 0..4),
        edits_b in proptest::collection::vec(any::<u8>(), 0..4),
        dep_a in 0usize..6,
        graph_edit in any::<bool>(),
    ) {
        let (tree, mut store) = workspace(n_pkgs, &dep_bits);
        let add_dep = if graph_edit { Some(dep_a % n_pkgs) } else { None };
        let ca = patch(n_pkgs, &edits_a, "a", add_dep);
        let cb = patch(n_pkgs, &edits_b, "b", None);
        let ta = ca.apply(&tree, &mut store).unwrap();
        let tb = cb.apply(&tree, &mut store).unwrap();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let aa = SnapshotAnalysis::analyze(&ta, &store).unwrap();
        let ab = SnapshotAnalysis::analyze(&tb, &store).unwrap();
        let da = AffectedSet::between(&base, &aa);
        let db = AffectedSet::between(&base, &ab);

        let mut interner: Interner<TargetName> = Interner::new();
        let ia = InternedAffected::from_affected(&da, &mut interner);
        let ib = InternedAffected::from_affected(&db, &mut interner);

        // Step 2 as a word-wise AND == Step 2 over the string-keyed maps.
        prop_assert_eq!(ia.names_intersect(&ib), da.names_intersect(&db));
        prop_assert_eq!(ib.names_intersect(&ia), ia.names_intersect(&ib));

        // The interned state comparison == the fast-path oracle.
        prop_assert_eq!(ia.shared_disagreement(&ib), oracle_disagreement(&da, &db));
        prop_assert_eq!(ib.shared_disagreement(&ia), oracle_disagreement(&db, &da));

        // When the fast path applies, its verdict IS that comparison.
        if let Some(decided) = fast_path_conflict(&base, &aa, &ab) {
            prop_assert_eq!(decided, ia.shared_disagreement(&ib));
        }

        // Conservativeness: a Step-2 hit always makes the union graph
        // report a conflict.
        if ia.names_intersect(&ib) {
            prop_assert!(union_graph_conflict(&base, &aa, &ab));
        }
    }
}

/// The paper's Figure 8 fixture, interned: C1 edits a source of `x`
/// (affecting `x` and its dependent `y`); C2 makes `z` depend on `x`.
/// The interned bitsets are disjoint — and that is exactly why bitset
/// intersection alone must never be read as independence: the union-graph
/// walk still finds the dependency coupling.
#[test]
fn fig8_counterexample_interned() {
    let mut store = ObjectStore::new();
    let mut tree = Tree::new();
    for (path, content) in [
        ("x/BUILD", "library(name = \"x\", srcs = [\"a.rs\"])"),
        ("x/a.rs", "x-v1"),
        (
            "y/BUILD",
            "library(name = \"y\", srcs = [\"a.rs\"], deps = [\"//x:x\"])",
        ),
        ("y/a.rs", "y-v1"),
        ("z/BUILD", "library(name = \"z\", srcs = [\"a.rs\"])"),
        ("z/a.rs", "z-v1"),
    ] {
        let id = store.put(content.as_bytes().to_vec());
        tree.insert(p(path), id);
    }
    let c1 = Patch::write(p("x/a.rs"), "x-v2");
    let c2 = Patch::write(
        p("z/BUILD"),
        "library(name = \"z\", srcs = [\"a.rs\"], deps = [\"//x:x\"])",
    );
    let t1 = c1.apply(&tree, &mut store).unwrap();
    let t2 = c2.apply(&tree, &mut store).unwrap();
    let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
    let a1 = SnapshotAnalysis::analyze(&t1, &store).unwrap();
    let a2 = SnapshotAnalysis::analyze(&t2, &store).unwrap();
    let d1 = AffectedSet::between(&base, &a1);
    let d2 = AffectedSet::between(&base, &a2);
    let mut interner: Interner<TargetName> = Interner::new();
    let i1 = InternedAffected::from_affected(&d1, &mut interner);
    let i2 = InternedAffected::from_affected(&d2, &mut interner);
    // Interned Step 2 agrees with the string-keyed original: disjoint.
    assert!(!i1.names_intersect(&i2));
    assert!(!d1.names_intersect(&d2));
    assert!(!i1.shared_disagreement(&i2));
    // The fast path refuses (C2 altered the graph) and the union-graph
    // walk still reports the conflict — a bitset miss is necessary but
    // not sufficient for independence.
    assert_eq!(fast_path_conflict(&base, &a1, &a2), None);
    assert!(union_graph_conflict(&base, &a1, &a2));
}
