//! Affected-target sets: δ(H⊕C) (paper Section 5.2).
//!
//! "δ(H⊕Cᵢ) denotes the set of build targets whose hash changes when
//! change Cᵢ is applied to mainline H." We carry slightly more than the
//! paper's notation: each affected target keeps its *state* — added,
//! changed (with the new hash), or deleted — because the build planner
//! (Section 6) needs the resulting hash to key the artifact cache, and
//! Equation 6 compares affected sets *including* those hashes.

use crate::error::BuildError;
use crate::graph::{BuildGraph, TargetName};
use crate::hash::{TargetHash, TargetHashes};
use crate::parser::parse_workspace;
use sq_vcs::{ObjectStore, Tree};
use std::collections::BTreeMap;

/// Everything the conflict analyzer needs to know about one snapshot:
/// its tree, its parsed target graph, and its Algorithm-1 hashes.
#[derive(Debug, Clone)]
pub struct SnapshotAnalysis {
    /// The analyzed snapshot.
    pub tree: Tree,
    /// The parsed, validated target graph.
    pub graph: BuildGraph,
    /// Algorithm-1 hashes of every target.
    pub hashes: TargetHashes,
}

impl SnapshotAnalysis {
    /// Parse and hash a snapshot.
    pub fn analyze(tree: &Tree, store: &ObjectStore) -> Result<SnapshotAnalysis, BuildError> {
        let graph = parse_workspace(tree, store)?;
        let hashes = TargetHashes::compute(&graph, tree, store)?;
        Ok(SnapshotAnalysis {
            tree: tree.clone(),
            graph,
            hashes,
        })
    }

    /// True iff the two snapshots declare structurally identical target
    /// graphs (same targets, kinds, sources, dependencies). This is the
    /// §5.2 fast-path condition — per the paper only 7.9% (iOS) / 1.6%
    /// (Backend) of changes make it false.
    pub fn same_graph_structure(&self, other: &SnapshotAnalysis) -> bool {
        self.graph.same_structure(&other.graph)
    }
}

/// How a change affected one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AffectedState {
    /// The target is new in the changed snapshot.
    Added(TargetHash),
    /// The target exists in both snapshots with different hashes; the
    /// carried hash is the *new* one.
    Changed(TargetHash),
    /// The target no longer exists in the changed snapshot.
    Deleted,
}

impl AffectedState {
    /// The resulting hash, if the target still exists.
    pub fn hash(&self) -> Option<TargetHash> {
        match self {
            AffectedState::Added(h) | AffectedState::Changed(h) => Some(*h),
            AffectedState::Deleted => None,
        }
    }
}

/// δ(H⊕C): the targets whose hash differs between two snapshots, each
/// with its [`AffectedState`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AffectedSet {
    map: BTreeMap<TargetName, AffectedState>,
}

impl AffectedSet {
    /// The affected set between a base analysis and a changed analysis.
    pub fn between(base: &SnapshotAnalysis, new: &SnapshotAnalysis) -> AffectedSet {
        let mut map = BTreeMap::new();
        for (name, hash) in new.hashes.iter() {
            match base.hashes.get(name) {
                None => {
                    map.insert(name.clone(), AffectedState::Added(hash));
                }
                Some(old) if old != hash => {
                    map.insert(name.clone(), AffectedState::Changed(hash));
                }
                Some(_) => {}
            }
        }
        for (name, _) in base.hashes.iter() {
            if new.hashes.get(name).is_none() {
                map.insert(name.clone(), AffectedState::Deleted);
            }
        }
        AffectedSet { map }
    }

    /// This target's state, if affected.
    pub fn get(&self, name: &TargetName) -> Option<&AffectedState> {
        self.map.get(name)
    }

    /// True iff the target is affected.
    pub fn contains(&self, name: &TargetName) -> bool {
        self.map.contains_key(name)
    }

    /// Iterate `(name, state)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&TargetName, &AffectedState)> {
        self.map.iter()
    }

    /// Affected target names in order.
    pub fn names(&self) -> impl Iterator<Item = &TargetName> {
        self.map.keys()
    }

    /// Number of affected targets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no target was affected.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True iff this affected set is a *leaf footprint* of `graph`: no
    /// target outside the set depends (directly) on any member, so the
    /// change's blast radius ends at the targets it touched. Doc-only
    /// and leaf-tool edits look like this, which is what makes them
    /// safe candidates for a bypass lane — nothing downstream can be
    /// broken by them. The empty set is trivially a leaf footprint.
    /// Deleted members still count: a dangling dependent means the
    /// footprint is not a leaf.
    pub fn is_leaf_footprint(&self, graph: &BuildGraph) -> bool {
        if self.is_empty() {
            return true;
        }
        graph
            .targets()
            .filter(|t| !self.contains(&t.name))
            .all(|t| t.deps.iter().all(|d| !self.contains(d)))
    }

    /// True iff the two sets share any affected target name (Step 2 of
    /// the union-graph algorithm; also the Fig. 8 trap — name overlap is
    /// *not* the whole conflict story).
    pub fn names_intersect(&self, other: &AffectedSet) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        // Walk the smaller set, probe the larger.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.names().any(|n| large.contains(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_vcs::{Patch, RepoPath};
    use std::str::FromStr;

    fn n(s: &str) -> TargetName {
        TargetName::from_str(s).unwrap()
    }

    fn p(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    fn workspace() -> (Tree, ObjectStore) {
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        let files = [
            ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
            ("lib/l.rs", "lib-v1"),
            (
                "app/BUILD",
                "binary(name = \"app\", srcs = [\"m.rs\"], deps = [\"//lib:lib\"])",
            ),
            ("app/m.rs", "app-v1"),
            ("tool/BUILD", "library(name = \"tool\", srcs = [\"t.rs\"])"),
            ("tool/t.rs", "tool-v1"),
        ];
        for (path, content) in files {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(p(path), id);
        }
        (tree, store)
    }

    #[test]
    fn identical_snapshots_have_empty_delta() {
        let (tree, store) = workspace();
        let a = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let b = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let d = AffectedSet::between(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(a.same_graph_structure(&b));
    }

    #[test]
    fn source_edit_yields_changed_states_transitively() {
        let (tree, mut store) = workspace();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let t2 = Patch::write(p("lib/l.rs"), "lib-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let new = SnapshotAnalysis::analyze(&t2, &store).unwrap();
        let d = AffectedSet::between(&base, &new);
        assert_eq!(d.len(), 2); // lib + its dependent app; tool untouched
        for t in ["//lib:lib", "//app:app"] {
            let state = d.get(&n(t)).unwrap();
            assert!(matches!(state, AffectedState::Changed(_)), "{t}: {state:?}");
            assert_eq!(state.hash(), new.hashes.get(&n(t)));
        }
        assert!(d.get(&n("//tool:tool")).is_none());
        assert!(!d.contains(&n("//tool:tool")));
        assert!(
            base.same_graph_structure(&new),
            "source edits keep structure"
        );
    }

    #[test]
    fn added_and_deleted_targets_are_reported() {
        let (tree, mut store) = workspace();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        // Add a package, delete another.
        let patch = Patch::from_ops([
            sq_vcs::FileOp::Write {
                path: p("new/BUILD"),
                content: "library(name = \"new\", srcs = [\"n.rs\"])".into(),
            },
            sq_vcs::FileOp::Write {
                path: p("new/n.rs"),
                content: "new-src".into(),
            },
            sq_vcs::FileOp::Delete {
                path: p("tool/BUILD"),
            },
            sq_vcs::FileOp::Delete {
                path: p("tool/t.rs"),
            },
        ]);
        let t2 = patch.apply(&tree, &mut store).unwrap();
        let new = SnapshotAnalysis::analyze(&t2, &store).unwrap();
        let d = AffectedSet::between(&base, &new);
        assert!(matches!(
            d.get(&n("//new:new")),
            Some(AffectedState::Added(_))
        ));
        assert_eq!(d.get(&n("//tool:tool")), Some(&AffectedState::Deleted));
        assert_eq!(d.get(&n("//tool:tool")).unwrap().hash(), None);
        assert!(!base.same_graph_structure(&new));
        // lib and app are untouched.
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn names_intersect_is_symmetric_and_correct() {
        let (tree, mut store) = workspace();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let ta = Patch::write(p("lib/l.rs"), "lib-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let tb = Patch::write(p("app/m.rs"), "app-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let tc = Patch::write(p("tool/t.rs"), "tool-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let da = AffectedSet::between(&base, &SnapshotAnalysis::analyze(&ta, &store).unwrap());
        let db = AffectedSet::between(&base, &SnapshotAnalysis::analyze(&tb, &store).unwrap());
        let dc = AffectedSet::between(&base, &SnapshotAnalysis::analyze(&tc, &store).unwrap());
        // da = {lib, app}, db = {app}, dc = {tool}.
        assert!(da.names_intersect(&db));
        assert!(db.names_intersect(&da));
        assert!(!da.names_intersect(&dc));
        assert!(!dc.names_intersect(&da));
    }

    #[test]
    fn leaf_footprints_are_detected() {
        let (tree, mut store) = workspace();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        // Editing lib affects {lib, app}: app (outside? no — inside) —
        // the pair is closed under dependents, so it is a leaf footprint.
        let ta = Patch::write(p("lib/l.rs"), "lib-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let na = SnapshotAnalysis::analyze(&ta, &store).unwrap();
        let da = AffectedSet::between(&base, &na);
        assert_eq!(da.len(), 2);
        assert!(da.is_leaf_footprint(&na.graph));
        // The standalone tool target is a leaf.
        let tc = Patch::write(p("tool/t.rs"), "tool-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let nc = SnapshotAnalysis::analyze(&tc, &store).unwrap();
        let dc = AffectedSet::between(&base, &nc);
        assert_eq!(dc.len(), 1);
        assert!(dc.is_leaf_footprint(&nc.graph));
        // A synthetic set holding only lib is NOT a leaf: app depends on
        // it from outside the set.
        let mut only_lib = AffectedSet::default();
        only_lib.map.insert(
            n("//lib:lib"),
            AffectedState::Changed(na.hashes.get(&n("//lib:lib")).unwrap()),
        );
        assert!(!only_lib.is_leaf_footprint(&na.graph));
        // Empty sets are trivially leaves.
        assert!(AffectedSet::default().is_leaf_footprint(&na.graph));
    }
}
