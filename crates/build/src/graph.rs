//! The target DAG (paper Section 5.1).
//!
//! "Modern build systems such as Buck represent the source code as a
//! directed acyclic graph of *build targets*" — a target declares its
//! sources and the targets it depends on, and every build-system question
//! the paper asks (target hashes, affected sets, conflicts) is a question
//! about this graph. [`BuildGraph`] validates the DAG once at
//! construction (no duplicates, no dangling labels, no cycles) and
//! precomputes a deterministic topological order so that hashing
//! (Algorithm 1) and planning walk dependencies before dependents.

use crate::error::BuildError;
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use sq_vcs::RepoPath;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::str::FromStr;

/// A fully-qualified target label: `//package:name`.
///
/// Labels resolve the way Buck's do: `//a/b:t` is absolute, `:t` is
/// relative to the current package, and `//a/b` abbreviates `//a/b:b`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TargetName {
    package: String,
    name: String,
}

impl TargetName {
    /// Resolve a label against the package it appears in.
    pub fn resolve(label: &str, current_package: &str) -> Result<TargetName, BuildError> {
        let (package, name) = if let Some(rest) = label.strip_prefix("//") {
            match rest.split_once(':') {
                Some((pkg, name)) => (pkg.to_string(), name.to_string()),
                None if rest.is_empty() => return Err(BuildError::InvalidLabel(label.to_string())),
                None => {
                    // `//a/b` abbreviates `//a/b:b`.
                    let last = rest.rsplit('/').next().unwrap_or(rest);
                    (rest.to_string(), last.to_string())
                }
            }
        } else if let Some(name) = label.strip_prefix(':') {
            (current_package.to_string(), name.to_string())
        } else {
            return Err(BuildError::InvalidLabel(label.to_string()));
        };
        if name.is_empty() || name.contains([':', '/']) || package.contains(':') {
            return Err(BuildError::InvalidLabel(label.to_string()));
        }
        Ok(TargetName { package, name })
    }

    /// The package directory (may be empty for the repository root).
    pub fn package(&self) -> &str {
        &self.package
    }

    /// The target's short name (the part after the colon).
    pub fn short_name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for TargetName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "//{}:{}", self.package, self.name)
    }
}

// Debug prints the label form; a struct dump of two `String`s would
// bloat assertion diffs in every consumer test.
impl fmt::Debug for TargetName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TargetName({self})")
    }
}

impl FromStr for TargetName {
    type Err = BuildError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TargetName::resolve(s, "")
    }
}

impl Serialize for TargetName {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for TargetName {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        TargetName::from_str(&s).map_err(D::Error::custom)
    }
}

/// The kind of rule declaring a target; determines its step pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RuleKind {
    /// A compiled library.
    Library,
    /// A linked, packaged binary.
    Binary,
    /// A test suite.
    Test,
    /// Generated/validated configuration.
    Config,
}

impl RuleKind {
    /// The rule function name as written in BUILD files.
    pub fn rule_name(&self) -> &'static str {
        match self {
            RuleKind::Library => "library",
            RuleKind::Binary => "binary",
            RuleKind::Test => "test",
            RuleKind::Config => "config",
        }
    }

    /// Parse a BUILD-file rule function name.
    pub fn from_rule_name(s: &str) -> Option<RuleKind> {
        match s {
            "library" => Some(RuleKind::Library),
            "binary" => Some(RuleKind::Binary),
            "test" => Some(RuleKind::Test),
            "config" => Some(RuleKind::Config),
            _ => None,
        }
    }
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.rule_name())
    }
}

/// One build target: a rule instance with sources and dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// Fully-qualified name.
    pub name: TargetName,
    /// Rule kind (decides the step pipeline).
    pub kind: RuleKind,
    /// Source files, repository-relative, in declaration order.
    pub srcs: Vec<RepoPath>,
    /// Direct dependencies, in declaration order.
    pub deps: Vec<TargetName>,
}

impl Target {
    /// Convenience constructor.
    pub fn new(
        name: TargetName,
        kind: RuleKind,
        srcs: Vec<RepoPath>,
        deps: Vec<TargetName>,
    ) -> Target {
        Target {
            name,
            kind,
            srcs,
            deps,
        }
    }
}

/// A validated target DAG with a precomputed topological order.
#[derive(Debug, Clone, Default)]
pub struct BuildGraph {
    targets: BTreeMap<TargetName, Target>,
    /// Dependencies strictly before dependents; ties broken by name.
    topo: Vec<TargetName>,
    /// Longest dependency chain, counted in targets (0 for empty graphs).
    depth: usize,
}

impl BuildGraph {
    /// Build and validate a graph from explicit targets.
    ///
    /// Rejects duplicate target names, dependencies on undeclared targets,
    /// and dependency cycles — the snapshot is unbuildable in each case.
    pub fn from_targets(
        targets: impl IntoIterator<Item = Target>,
    ) -> Result<BuildGraph, BuildError> {
        let mut map: BTreeMap<TargetName, Target> = BTreeMap::new();
        for t in targets {
            if map.contains_key(&t.name) {
                return Err(BuildError::DuplicateTarget(t.name));
            }
            map.insert(t.name.clone(), t);
        }
        // Dangling labels.
        for t in map.values() {
            for d in &t.deps {
                if !map.contains_key(d) {
                    return Err(BuildError::UnknownDependency {
                        target: t.name.clone(),
                        dep: d.clone(),
                    });
                }
            }
        }
        // Kahn's algorithm with a name-ordered frontier: the order is a
        // pure function of the target set, so two parses of the same
        // snapshot hash and plan identically.
        let mut indegree: BTreeMap<&TargetName, usize> = BTreeMap::new();
        let mut dependents: HashMap<&TargetName, Vec<&TargetName>> = HashMap::new();
        for t in map.values() {
            indegree.entry(&t.name).or_insert(0);
            for d in &t.deps {
                *indegree.entry(&t.name).or_insert(0) += 1;
                dependents.entry(d).or_default().push(&t.name);
            }
        }
        let mut ready: BTreeSet<&TargetName> = indegree
            .iter()
            .filter(|(_, &n)| n == 0)
            .map(|(&t, _)| t)
            .collect();
        let mut topo: Vec<TargetName> = Vec::with_capacity(map.len());
        let mut chain: HashMap<&TargetName, usize> = HashMap::new();
        let mut depth = 0usize;
        while let Some(&name) = ready.iter().next() {
            ready.remove(name);
            let longest = 1 + map[name]
                .deps
                .iter()
                .map(|d| chain.get(d).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            chain.insert(name, longest);
            depth = depth.max(longest);
            topo.push(name.clone());
            if let Some(ds) = dependents.get(name) {
                for &d in ds {
                    let n = indegree.get_mut(d).expect("dependent tracked");
                    *n -= 1;
                    if *n == 0 {
                        ready.insert(d);
                    }
                }
            }
        }
        if topo.len() != map.len() {
            let stuck: Vec<TargetName> = indegree
                .iter()
                .filter(|(_, &n)| n > 0)
                .map(|(&t, _)| t.clone())
                .collect();
            return Err(BuildError::DependencyCycle(stuck));
        }
        Ok(BuildGraph {
            targets: map,
            topo,
            depth,
        })
    }

    /// Look up a target by name.
    pub fn get(&self, name: &TargetName) -> Option<&Target> {
        self.targets.get(name)
    }

    /// True iff the graph declares this target.
    pub fn contains(&self, name: &TargetName) -> bool {
        self.targets.contains_key(name)
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True iff the graph has no targets.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Target names in name order.
    pub fn names(&self) -> impl Iterator<Item = &TargetName> {
        self.targets.keys()
    }

    /// Targets in name order.
    pub fn targets(&self) -> impl Iterator<Item = &Target> {
        self.targets.values()
    }

    /// Target names in topological order (dependencies first).
    pub fn topo_order(&self) -> impl Iterator<Item = &TargetName> {
        self.topo.iter()
    }

    /// Length of the longest dependency chain, in targets (1 when the
    /// graph has targets but no edges; 0 when empty).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// True iff both graphs declare the same targets with the same rule
    /// kinds, sources and dependencies — the *structure* Algorithm 1's
    /// fast path keys on; file contents are deliberately not compared.
    pub fn same_structure(&self, other: &BuildGraph) -> bool {
        self.targets == other.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> TargetName {
        TargetName::from_str(s).unwrap()
    }

    fn p(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    fn t(name: &str, deps: &[&str]) -> Target {
        Target::new(
            n(name),
            RuleKind::Library,
            vec![],
            deps.iter().map(|d| n(d)).collect(),
        )
    }

    #[test]
    fn label_resolution() {
        let abs = TargetName::resolve("//a/b:t", "ignored").unwrap();
        assert_eq!(abs.package(), "a/b");
        assert_eq!(abs.short_name(), "t");
        assert_eq!(abs.to_string(), "//a/b:t");
        let rel = TargetName::resolve(":t", "a/b").unwrap();
        assert_eq!(rel, abs);
        let short = TargetName::resolve("//a/b", "").unwrap();
        assert_eq!(short.short_name(), "b");
        assert_eq!(short, TargetName::resolve("//a/b:b", "").unwrap());
    }

    #[test]
    fn bad_labels_rejected() {
        for bad in ["", "plain", "//", "//a:", "//a:b:c", "//a:b/c", ":"] {
            assert!(
                TargetName::resolve(bad, "pkg").is_err(),
                "label {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn serde_roundtrips_via_label_form() {
        let name = n("//a/b:t");
        let json = serde_json::to_string(&name).unwrap();
        assert_eq!(json, "\"//a/b:t\"");
        let back: TargetName = serde_json::from_str(&json).unwrap();
        assert_eq!(back, name);
        assert!(serde_json::from_str::<TargetName>("\"junk\"").is_err());
    }

    #[test]
    fn rule_kind_roundtrip() {
        for kind in [
            RuleKind::Library,
            RuleKind::Binary,
            RuleKind::Test,
            RuleKind::Config,
        ] {
            assert_eq!(RuleKind::from_rule_name(kind.rule_name()), Some(kind));
        }
        assert_eq!(RuleKind::from_rule_name("genrule"), None);
    }

    #[test]
    fn topo_orders_deps_first_and_deterministically() {
        let g = BuildGraph::from_targets([
            t("//c:c", &["//b:b"]),
            t("//b:b", &["//a:a"]),
            t("//a:a", &[]),
            t("//d:d", &[]),
        ])
        .unwrap();
        let order: Vec<String> = g.topo_order().map(|x| x.to_string()).collect();
        let pos = |s: &str| order.iter().position(|x| x == s).unwrap();
        assert!(pos("//a:a") < pos("//b:b"));
        assert!(pos("//b:b") < pos("//c:c"));
        // Deterministic: rebuilding from a permuted list gives the same order.
        let g2 = BuildGraph::from_targets([
            t("//d:d", &[]),
            t("//a:a", &[]),
            t("//b:b", &["//a:a"]),
            t("//c:c", &["//b:b"]),
        ])
        .unwrap();
        let order2: Vec<String> = g2.topo_order().map(|x| x.to_string()).collect();
        assert_eq!(order, order2);
        assert_eq!(g.depth(), 3);
        assert!(g.same_structure(&g2));
    }

    #[test]
    fn duplicate_dangling_and_cycle_rejected() {
        assert!(matches!(
            BuildGraph::from_targets([t("//a:a", &[]), t("//a:a", &[])]),
            Err(BuildError::DuplicateTarget(_))
        ));
        assert!(matches!(
            BuildGraph::from_targets([t("//a:a", &["//nope:nope"])]),
            Err(BuildError::UnknownDependency { .. })
        ));
        assert!(matches!(
            BuildGraph::from_targets([t("//a:a", &["//b:b"]), t("//b:b", &["//a:a"])]),
            Err(BuildError::DependencyCycle(_))
        ));
    }

    #[test]
    fn structure_ignores_nothing_it_should_track() {
        let base = || {
            vec![Target::new(
                n("//a:a"),
                RuleKind::Library,
                vec![p("a/s.rs")],
                vec![],
            )]
        };
        let g1 = BuildGraph::from_targets(base()).unwrap();
        // Different kind.
        let mut other = base();
        other[0].kind = RuleKind::Binary;
        assert!(!g1.same_structure(&BuildGraph::from_targets(other).unwrap()));
        // Different srcs.
        let mut other = base();
        other[0].srcs.push(p("a/extra.rs"));
        assert!(!g1.same_structure(&BuildGraph::from_targets(other).unwrap()));
        // Identical.
        assert!(g1.same_structure(&BuildGraph::from_targets(base()).unwrap()));
    }

    #[test]
    fn empty_graph() {
        let g = BuildGraph::from_targets([]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.depth(), 0);
        assert_eq!(g.topo_order().count(), 0);
    }
}
