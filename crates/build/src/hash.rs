//! Algorithm 1: hermetic target hashing (paper Section 5.2).
//!
//! "For each build target, SubmitQueue computes a target hash ... The
//! hash of a target changes if and only if the contents of one of its
//! source files, or the hash of one of its dependencies, changes." We
//! realize exactly that fixpoint: walking the graph in topological order,
//! each target's SHA-256 absorbs its rule kind, its name, the *contents*
//! of its sources (not just their ids — hermeticity), and the hashes of
//! its direct dependencies, which transitively fold in the whole input
//! closure. Every field is length-prefixed so the encoding is injective:
//! two different input closures can only collide if SHA-256 itself does.

use crate::error::BuildError;
use crate::graph::{BuildGraph, TargetName};
use serde::{Deserialize, Serialize};
use sq_vcs::{ObjectStore, Sha256, Tree};
use std::collections::BTreeMap;
use std::fmt;

/// A target's Algorithm-1 hash: 32 bytes covering its transitive inputs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TargetHash([u8; 32]);

impl TargetHash {
    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Full lowercase hex form.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Abbreviated (12 hex chars) form for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_string()
    }
}

impl fmt::Debug for TargetHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TargetHash({})", self.short())
    }
}

impl fmt::Display for TargetHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.short())
    }
}

/// The Algorithm-1 hashes of every target in a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TargetHashes {
    hashes: BTreeMap<TargetName, TargetHash>,
}

/// Absorb one field with a domain tag and a length prefix, keeping the
/// overall byte stream uniquely decodable.
fn feed(h: &mut Sha256, tag: &[u8], bytes: &[u8]) {
    h.update(tag);
    h.update(&(bytes.len() as u64).to_le_bytes());
    h.update(bytes);
}

impl TargetHashes {
    /// Compute every target's hash over a snapshot (Algorithm 1).
    ///
    /// Fails if a declared source is absent from the tree or its blob is
    /// absent from the store — a hash over unknown content would not be
    /// hermetic.
    pub fn compute(
        graph: &BuildGraph,
        tree: &Tree,
        store: &ObjectStore,
    ) -> Result<TargetHashes, BuildError> {
        let mut hashes: BTreeMap<TargetName, TargetHash> = BTreeMap::new();
        for name in graph.topo_order() {
            let target = graph
                .get(name)
                .expect("topo order only lists graph targets");
            let mut h = Sha256::new();
            feed(&mut h, b"kind", target.kind.rule_name().as_bytes());
            feed(&mut h, b"name", name.to_string().as_bytes());
            for src in &target.srcs {
                let id = tree.get(src).ok_or_else(|| BuildError::MissingSource {
                    target: name.clone(),
                    path: src.as_str().to_string(),
                })?;
                let content = store
                    .get(&id)
                    .ok_or_else(|| BuildError::MissingObject(id.to_hex()))?;
                feed(&mut h, b"src", src.as_str().as_bytes());
                feed(&mut h, b"blob", content.as_ref());
            }
            for dep in &target.deps {
                let dep_hash = hashes
                    .get(dep)
                    .expect("topo order puts dependencies before dependents");
                feed(&mut h, b"dep", dep.to_string().as_bytes());
                feed(&mut h, b"dep-hash", dep_hash.as_bytes());
            }
            hashes.insert(name.clone(), TargetHash(h.finalize()));
        }
        Ok(TargetHashes { hashes })
    }

    /// The hash of one target, if it exists in the snapshot.
    pub fn get(&self, name: &TargetName) -> Option<TargetHash> {
        self.hashes.get(name).copied()
    }

    /// Number of hashed targets.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True iff no targets were hashed.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Iterate `(name, hash)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&TargetName, TargetHash)> {
        self.hashes.iter().map(|(n, &h)| (n, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_workspace;
    use sq_vcs::RepoPath;
    use std::str::FromStr;

    fn n(s: &str) -> TargetName {
        TargetName::from_str(s).unwrap()
    }

    /// chain: base ← mid ← top, plus unrelated other.
    fn workspace(base_src: &str) -> (Tree, ObjectStore) {
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        let files = [
            ("base/BUILD", "library(name = \"base\", srcs = [\"b.rs\"])"),
            ("base/b.rs", base_src),
            (
                "mid/BUILD",
                "library(name = \"mid\", srcs = [\"m.rs\"], deps = [\"//base:base\"])",
            ),
            ("mid/m.rs", "mid-src"),
            (
                "top/BUILD",
                "binary(name = \"top\", srcs = [\"t.rs\"], deps = [\"//mid:mid\"])",
            ),
            ("top/t.rs", "top-src"),
            (
                "other/BUILD",
                "library(name = \"other\", srcs = [\"o.rs\"])",
            ),
            ("other/o.rs", "other-src"),
        ];
        for (path, content) in files {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(RepoPath::new(path).unwrap(), id);
        }
        (tree, store)
    }

    fn hashes_of(tree: &Tree, store: &ObjectStore) -> TargetHashes {
        let graph = parse_workspace(tree, store).unwrap();
        TargetHashes::compute(&graph, tree, store).unwrap()
    }

    #[test]
    fn deterministic_across_runs_and_stores() {
        // Two computations over the same snapshot agree...
        let (tree, store) = workspace("base-v1");
        let h1 = hashes_of(&tree, &store);
        let h2 = hashes_of(&tree, &store);
        assert_eq!(h1, h2);
        // ...and so do computations over an independently built store
        // (DESIGN.md invariant 3: the hash is a pure function of the
        // snapshot content).
        let (tree_b, store_b) = workspace("base-v1");
        let h3 = hashes_of(&tree_b, &store_b);
        assert_eq!(h1, h3);
    }

    #[test]
    fn source_edit_propagates_to_transitive_dependents_only() {
        let (tree_v1, store_v1) = workspace("base-v1");
        let (tree_v2, store_v2) = workspace("base-v2");
        let h1 = hashes_of(&tree_v1, &store_v1);
        let h2 = hashes_of(&tree_v2, &store_v2);
        // base changed directly; mid and top transitively (Algorithm 1:
        // a dependency's hash change propagates).
        for t in ["//base:base", "//mid:mid", "//top:top"] {
            assert_ne!(h1.get(&n(t)), h2.get(&n(t)), "{t} must change");
        }
        // The unrelated target is untouched.
        assert_eq!(h1.get(&n("//other:other")), h2.get(&n("//other:other")));
    }

    #[test]
    fn dep_list_change_alone_changes_the_hash() {
        let (tree, mut store) = workspace("base-v1");
        let h1 = hashes_of(&tree, &store);
        // Rewire other to depend on base without touching any source.
        let patched = sq_vcs::Patch::write(
            RepoPath::new("other/BUILD").unwrap(),
            "library(name = \"other\", srcs = [\"o.rs\"], deps = [\"//base:base\"])",
        )
        .apply(&tree, &mut store)
        .unwrap();
        let h2 = hashes_of(&patched, &store);
        assert_ne!(h1.get(&n("//other:other")), h2.get(&n("//other:other")));
        assert_eq!(h1.get(&n("//base:base")), h2.get(&n("//base:base")));
    }

    #[test]
    fn renaming_a_source_changes_the_hash_even_with_same_content() {
        // Path is part of the closure: same bytes under a different name
        // is a different input (e.g. include-by-name semantics).
        let mut store = ObjectStore::new();
        let mut t1 = Tree::new();
        let id = store.put(&b"same content"[..]);
        t1.insert(RepoPath::new("p/a.rs").unwrap(), id);
        let b1 = store.put(&b"library(name = \"p\", srcs = [\"a.rs\"])"[..]);
        t1.insert(RepoPath::new("p/BUILD").unwrap(), b1);
        let mut t2 = Tree::new();
        t2.insert(RepoPath::new("p/b.rs").unwrap(), id);
        let b2 = store.put(&b"library(name = \"p\", srcs = [\"b.rs\"])"[..]);
        t2.insert(RepoPath::new("p/BUILD").unwrap(), b2);
        let h1 = hashes_of(&t1, &store);
        let h2 = hashes_of(&t2, &store);
        assert_ne!(h1.get(&n("//p:p")), h2.get(&n("//p:p")));
    }

    #[test]
    fn missing_source_and_missing_blob_are_errors() {
        let (tree, store) = workspace("base-v1");
        let graph = parse_workspace(&tree, &store).unwrap();
        // Drop a declared source from the tree.
        let mut pruned = tree.clone();
        pruned.remove(&RepoPath::new("mid/m.rs").unwrap());
        assert!(matches!(
            TargetHashes::compute(&graph, &pruned, &store),
            Err(BuildError::MissingSource { .. })
        ));
        // Point the tree at a blob the store has never seen.
        let mut dangling = tree.clone();
        dangling.insert(
            RepoPath::new("mid/m.rs").unwrap(),
            sq_vcs::ObjectId::for_bytes(b"never stored"),
        );
        assert!(matches!(
            TargetHashes::compute(&graph, &dangling, &store),
            Err(BuildError::MissingObject(_))
        ));
    }

    #[test]
    fn accessors() {
        let (tree, store) = workspace("base-v1");
        let h = hashes_of(&tree, &store);
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        assert_eq!(h.iter().count(), 4);
        let one = h.get(&n("//base:base")).unwrap();
        assert_eq!(one.to_hex().len(), 64);
        assert_eq!(one.short().len(), 12);
        assert!(one.to_hex().starts_with(&one.short()));
        assert!(h.get(&n("//nope:nope")).is_none());
    }
}
