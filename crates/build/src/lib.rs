//! # sq-build — a Buck-like build system for the SubmitQueue stack
//!
//! The paper (EuroSys '19) assumes a monorepo organized "as a directed
//! acyclic graph of build targets" with hermetic, content-derived target
//! hashes — that is what its whole conflict analysis is computed over.
//! This crate is that substrate, mapped module-by-module to the paper:
//!
//! * [`graph`] — targets, labels, and the validated target DAG (§5.1);
//! * [`parser`] — BUILD files (a Starlark-like subset) parsed out of an
//!   `sq-vcs` snapshot into a [`BuildGraph`] (§5.1);
//! * [`hash`] — Algorithm 1: hermetic target hashes that change iff a
//!   source blob or a transitive dependency hash changes (§5.2);
//! * [`affected`] — δ(H⊕C): the affected-target set between two
//!   snapshots, with per-target added/changed/deleted states (§5.2);
//! * [`conflict`] — Equation 6, the union-graph algorithm (Steps 1–4),
//!   the unchanged-graph fast path, and the tiered production check
//!   ([`conflict::changes_conflict`]) used by the conflict analyzer
//!   (§5.2, Fig. 8);
//! * [`bitset`] — target-name interning and packed-word bitsets, so the
//!   per-pair Eq.-6 name intersection is a word-wise AND instead of a
//!   string-keyed map probe (the conflict index in `sq-core` builds on
//!   this);
//! * [`shard`] — deterministic target-graph partitioning (connected
//!   components / top-level project) feeding the sharded planner in
//!   `sq-core`, with cross-shard dependency edges recorded for the
//!   arbiter;
//! * [`error`] — everything that makes a snapshot unbuildable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affected;
pub mod bitset;
pub mod conflict;
pub mod error;
pub mod graph;
pub mod hash;
pub mod parser;
pub mod shard;

pub use affected::{AffectedSet, AffectedState, SnapshotAnalysis};
pub use bitset::{BitSet, InternedAffected, Interner};
pub use error::BuildError;
pub use graph::{BuildGraph, RuleKind, Target, TargetName};
pub use hash::{TargetHash, TargetHashes};
pub use parser::parse_workspace;
pub use shard::{CrossShardEdge, ShardRule, TargetPartition};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, BuildError>;
