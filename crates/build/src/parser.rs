//! BUILD-file parsing (paper Section 5.1).
//!
//! Each package directory declares its targets in a `BUILD` file written
//! in a small Starlark-like subset: a sequence of rule calls
//!
//! ```text
//! library(
//!     name = "util",
//!     srcs = ["util.rs", "helpers.rs"],  # package-relative
//!     deps = ["//base:log", ":strings"],
//! )
//! ```
//!
//! [`parse_workspace`] reads every `BUILD` file in a snapshot and returns
//! the validated [`BuildGraph`]. Parsing is hermetic: it consumes only the
//! `Tree` and `ObjectStore`, so two calls on equal snapshots yield
//! structurally equal graphs — which is what lets the conflict analyzer
//! compare graphs across speculative merges (Section 5.2).

use crate::error::BuildError;
use crate::graph::{BuildGraph, RuleKind, Target, TargetName};
use sq_vcs::{ObjectStore, RepoPath, Tree};

/// Parse all BUILD files in the snapshot into a validated target graph.
pub fn parse_workspace(tree: &Tree, store: &ObjectStore) -> Result<BuildGraph, BuildError> {
    let mut targets: Vec<Target> = Vec::new();
    for (path, id) in tree.iter() {
        if path.file_name() != "BUILD" {
            continue;
        }
        let text = store
            .get_text(id)
            .ok_or_else(|| BuildError::MissingObject(id.to_hex()))?;
        let package = path.parent().unwrap_or("");
        targets.extend(parse_build_file(path.as_str(), package, &text)?);
    }
    BuildGraph::from_targets(targets)
}

/// Parse one BUILD file's rule calls into targets of `package`.
fn parse_build_file(path: &str, package: &str, text: &str) -> Result<Vec<Target>, BuildError> {
    let tokens = tokenize(path, text)?;
    let mut p = Parser {
        path,
        package,
        tokens: &tokens,
        pos: 0,
    };
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.rule()?);
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Equals,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier '{s}'"),
            Token::Str(s) => format!("string {s:?}"),
            Token::LParen => "'('".into(),
            Token::RParen => "')'".into(),
            Token::LBracket => "'['".into(),
            Token::RBracket => "']'".into(),
            Token::Comma => "','".into(),
            Token::Equals => "'='".into(),
        }
    }
}

fn tokenize(path: &str, text: &str) -> Result<Vec<Token>, BuildError> {
    let err = |message: String| BuildError::Parse {
        path: path.to_string(),
        message,
    };
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '[' => {
                chars.next();
                tokens.push(Token::LBracket);
            }
            ']' => {
                chars.next();
                tokens.push(Token::RBracket);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Equals);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => return Err(err("unterminated string literal".into())),
                        Some(c) => s.push(c),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => return Err(err(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    path: &'a str,
    package: &'a str,
    tokens: &'a [Token],
    pos: usize,
}

/// An attribute value: a string or a list of strings.
enum Value {
    Str(String),
    List(Vec<String>),
}

impl<'a> Parser<'a> {
    fn err(&self, message: String) -> BuildError {
        BuildError::Parse {
            path: self.path.to_string(),
            message,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self, wanted: &str) -> Result<&'a Token, BuildError> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| self.err(format!("expected {wanted}, found end of file")))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, token: Token) -> Result<(), BuildError> {
        let found = self.next(&token.describe())?;
        if *found == token {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                token.describe(),
                found.describe()
            )))
        }
    }

    fn peek_is(&self, token: &Token) -> bool {
        self.tokens.get(self.pos) == Some(token)
    }

    /// `kind ( name = "...", srcs = [...], deps = [...] )`
    fn rule(&mut self) -> Result<Target, BuildError> {
        let kind = match self.next("a rule name")? {
            Token::Ident(s) => RuleKind::from_rule_name(s)
                .ok_or_else(|| self.err(format!("unknown rule kind '{s}'")))?,
            other => {
                return Err(self.err(format!("expected a rule name, found {}", other.describe())))
            }
        };
        self.expect(Token::LParen)?;
        let mut name: Option<String> = None;
        let mut srcs: Vec<String> = Vec::new();
        let mut deps: Vec<String> = Vec::new();
        while !self.peek_is(&Token::RParen) {
            let attr = match self.next("an attribute name")? {
                Token::Ident(s) => s.clone(),
                other => {
                    return Err(
                        self.err(format!("expected an attribute, found {}", other.describe()))
                    )
                }
            };
            self.expect(Token::Equals)?;
            let value = self.value()?;
            match (attr.as_str(), value) {
                ("name", Value::Str(s)) => name = Some(s),
                ("name", Value::List(_)) => return Err(self.err("'name' must be a string".into())),
                ("srcs", Value::List(l)) => srcs = l,
                ("srcs", Value::Str(_)) => return Err(self.err("'srcs' must be a list".into())),
                ("deps", Value::List(l)) => deps = l,
                ("deps", Value::Str(_)) => return Err(self.err("'deps' must be a list".into())),
                // Unknown attributes (visibility, tags, ...) are tolerated
                // and ignored, as in Buck.
                _ => {}
            }
            if self.peek_is(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(Token::RParen)?;
        let name = name.ok_or_else(|| self.err("rule is missing the 'name' attribute".into()))?;
        let target_name = TargetName::resolve(&format!(":{name}"), self.package)?;
        let srcs = srcs
            .iter()
            .map(|s| {
                let full = if self.package.is_empty() {
                    s.clone()
                } else {
                    format!("{}/{}", self.package, s)
                };
                RepoPath::new(&full).map_err(|_| self.err(format!("invalid source path '{s}'")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let deps = deps
            .iter()
            .map(|d| TargetName::resolve(d, self.package))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Target::new(target_name, kind, srcs, deps))
    }

    fn value(&mut self) -> Result<Value, BuildError> {
        match self.next("a value")? {
            Token::Str(s) => Ok(Value::Str(s.clone())),
            Token::LBracket => {
                let mut items = Vec::new();
                while !self.peek_is(&Token::RBracket) {
                    match self.next("a string")? {
                        Token::Str(s) => items.push(s.clone()),
                        other => {
                            return Err(self.err(format!(
                                "expected a string in list, found {}",
                                other.describe()
                            )))
                        }
                    }
                    if self.peek_is(&Token::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(Token::RBracket)?;
                Ok(Value::List(items))
            }
            other => Err(self.err(format!("expected a value, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn workspace(files: &[(&str, &str)]) -> (Tree, ObjectStore) {
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        for (p, c) in files {
            let id = store.put(c.as_bytes().to_vec());
            tree.insert(RepoPath::new(p).unwrap(), id);
        }
        (tree, store)
    }

    #[test]
    fn parses_a_small_workspace() {
        let (tree, store) = workspace(&[
            (
                "base/BUILD",
                "library(name = \"log\", srcs = [\"log.rs\"])\n",
            ),
            (
                "app/BUILD",
                "binary(\n  name = \"app\",\n  srcs = [\"main.rs\"],\n  deps = [\"//base:log\"],\n)\n",
            ),
            ("base/log.rs", "fn log() {}"),
            ("app/main.rs", "fn main() {}"),
        ]);
        let g = parse_workspace(&tree, &store).unwrap();
        assert_eq!(g.len(), 2);
        let app = g.get(&TargetName::from_str("//app:app").unwrap()).unwrap();
        assert_eq!(app.kind, RuleKind::Binary);
        assert_eq!(app.srcs, vec![RepoPath::new("app/main.rs").unwrap()]);
        assert_eq!(app.deps, vec![TargetName::from_str("//base:log").unwrap()]);
    }

    #[test]
    fn relative_deps_comments_and_unknown_attrs() {
        let (tree, store) = workspace(&[(
            "pkg/BUILD",
            "# two targets, one relative dep\n\
             library(name = \"a\", srcs = [\"a.rs\"], visibility = [\"PUBLIC\"])\n\
             test(name = \"a_test\", srcs = [\"a_test.rs\"], deps = [\":a\"], size = \"small\")\n",
        )]);
        let g = parse_workspace(&tree, &store).unwrap();
        let t = g
            .get(&TargetName::from_str("//pkg:a_test").unwrap())
            .unwrap();
        assert_eq!(t.kind, RuleKind::Test);
        assert_eq!(t.deps, vec![TargetName::from_str("//pkg:a").unwrap()]);
    }

    #[test]
    fn trailing_commas_are_fine() {
        let (tree, store) = workspace(&[(
            "p/BUILD",
            "library(name = \"p\", srcs = [\"s.rs\",], deps = [],)\n",
        )]);
        assert_eq!(parse_workspace(&tree, &store).unwrap().len(), 1);
    }

    #[test]
    fn parse_errors_carry_path_and_message() {
        for (bad, needle) in [
            ("library(name = \"x\"", "end of file"),
            ("library(srcs = [\"s.rs\"])", "missing the 'name'"),
            ("library(name = [\"x\"])", "'name' must be a string"),
            ("genrule(name = \"x\")", "unknown rule kind"),
            ("library(name = \"x\") @", "unexpected character"),
            ("library(name = \"x", "unterminated string"),
        ] {
            let (tree, store) = workspace(&[("p/BUILD", bad)]);
            match parse_workspace(&tree, &store) {
                Err(BuildError::Parse { path, message }) => {
                    assert_eq!(path, "p/BUILD");
                    assert!(
                        message.contains(needle),
                        "for {bad:?}: {message:?} should mention {needle:?}"
                    );
                }
                other => panic!("expected parse error for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn dangling_dep_is_rejected_at_graph_level() {
        let (tree, store) = workspace(&[(
            "p/BUILD",
            "library(name = \"p\", srcs = [\"s.rs\"], deps = [\"//gone:gone\"])\n",
        )]);
        assert!(matches!(
            parse_workspace(&tree, &store),
            Err(BuildError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn non_build_files_are_ignored() {
        let (tree, store) = workspace(&[
            ("a/BUILD", "library(name = \"a\", srcs = [])\n"),
            ("a/BUILD.bak", "not ( valid"),
            ("notes/README", "plain text"),
        ]);
        assert_eq!(parse_workspace(&tree, &store).unwrap().len(), 1);
    }

    #[test]
    fn root_package_build_file() {
        let (tree, store) = workspace(&[("BUILD", "config(name = \"root\", srcs = [\"cfg\"])\n")]);
        let g = parse_workspace(&tree, &store).unwrap();
        let t = g.get(&TargetName::from_str("//:root").unwrap()).unwrap();
        assert_eq!(t.srcs, vec![RepoPath::new("cfg").unwrap()]);
    }
}
