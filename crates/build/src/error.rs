//! Errors of the build system.
//!
//! Anything that makes a snapshot unbuildable — unparseable BUILD files,
//! dangling labels, dependency cycles, missing sources — is rejected here,
//! *before* any build step runs. The paper relies on this: the conflict
//! analyzer only ever compares snapshots the build system accepts.

use crate::graph::TargetName;
use sq_vcs::VcsError;
use std::fmt;

/// Any error raised while parsing, validating or hashing a workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label could not be resolved into a `//package:name` target name.
    InvalidLabel(String),
    /// A BUILD file failed to parse.
    Parse {
        /// Repository path of the offending BUILD file.
        path: String,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Two rules declare the same target name.
    DuplicateTarget(TargetName),
    /// A rule's `deps` references a target that does not exist.
    UnknownDependency {
        /// The target whose dependency is dangling.
        target: TargetName,
        /// The label that resolves to nothing.
        dep: TargetName,
    },
    /// The dependency relation has a cycle through these targets.
    DependencyCycle(Vec<TargetName>),
    /// A rule's `srcs` references a file absent from the snapshot.
    MissingSource {
        /// The target whose source is missing.
        target: TargetName,
        /// The missing repository path.
        path: String,
    },
    /// A blob referenced by the snapshot is absent from the object store.
    MissingObject(String),
    /// An underlying version-control operation failed.
    Vcs(VcsError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidLabel(label) => write!(f, "invalid target label '{label}'"),
            BuildError::Parse { path, message } => {
                write!(f, "failed to parse BUILD file '{path}': {message}")
            }
            BuildError::DuplicateTarget(name) => write!(f, "duplicate target '{name}'"),
            BuildError::UnknownDependency { target, dep } => {
                write!(f, "target '{target}' depends on unknown target '{dep}'")
            }
            BuildError::DependencyCycle(names) => {
                let cycle: Vec<String> = names.iter().map(|n| n.to_string()).collect();
                write!(f, "dependency cycle through [{}]", cycle.join(", "))
            }
            BuildError::MissingSource { target, path } => {
                write!(f, "target '{target}' lists missing source '{path}'")
            }
            BuildError::MissingObject(hex) => write!(f, "object {hex} missing from store"),
            BuildError::Vcs(e) => write!(f, "vcs error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<VcsError> for BuildError {
    fn from(e: VcsError) -> Self {
        BuildError::Vcs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn display_forms_are_informative() {
        let t = TargetName::from_str("//a:b").unwrap();
        let d = TargetName::from_str("//c:d").unwrap();
        assert_eq!(
            BuildError::InvalidLabel("x".into()).to_string(),
            "invalid target label 'x'"
        );
        assert!(BuildError::DuplicateTarget(t.clone())
            .to_string()
            .contains("//a:b"));
        let e = BuildError::UnknownDependency {
            target: t.clone(),
            dep: d.clone(),
        };
        assert!(e.to_string().contains("//a:b") && e.to_string().contains("//c:d"));
        assert!(BuildError::DependencyCycle(vec![t, d])
            .to_string()
            .contains("cycle"));
    }

    #[test]
    fn vcs_errors_convert() {
        let e: BuildError = VcsError::MissingObject("deadbeef".into()).into();
        assert!(matches!(e, BuildError::Vcs(_)));
        assert!(e.to_string().contains("vcs error"));
    }
}
