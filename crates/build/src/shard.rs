//! Target-graph partitioning for sharded planning.
//!
//! The sharded planner (`sq-core`'s `shard` module) needs a *partition*
//! of the target universe into mostly-independent shards so that each
//! shard can run its own speculation engine. This module computes that
//! partition over the interned dense-id view of a [`BuildGraph`]
//! (reusing [`bitset::Interner`]) under one of two rules:
//!
//! * **Connected components** — union-find over the (undirected)
//!   dependency edges. Two targets in different components share no
//!   dependency path, so *no cross-shard dependency edge exists by
//!   construction*. This is the strongest isolation but monorepos with
//!   a common core library collapse to one giant component.
//! * **Top-level project** — group by the first path segment of the
//!   target's package (`//vision/detect:lib` → `vision`), the Google
//!   *Smart Build Targets Batching Service* batching key. Cross-shard
//!   dependency edges are possible (e.g. every project depending on
//!   `//base`); each one is recorded in the partition metadata so the
//!   planner can route changes touching both sides to the arbiter lane.
//!
//! Both rules are deterministic: targets are interned in the graph's
//! sorted name order and shards are numbered by first appearance, so the
//! same graph always yields byte-identical shard assignments regardless
//! of thread count or hash-map iteration order.

use crate::bitset::Interner;
use crate::graph::{BuildGraph, TargetName};

/// How targets are grouped into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardRule {
    /// Union-find connected components of the dependency graph.
    ConnectedComponents,
    /// First path segment of the target's package.
    TopLevelProject,
}

/// A dependency edge whose endpoints landed in different shards.
///
/// Only the [`ShardRule::TopLevelProject`] rule can produce these;
/// connected-component partitions have none by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossShardEdge {
    /// Dense id of the depending target.
    pub from: u32,
    /// Dense id of the dependency.
    pub to: u32,
    /// Shard of `from`.
    pub from_shard: u32,
    /// Shard of `to`.
    pub to_shard: u32,
}

/// A deterministic partition of a build graph's targets into shards.
#[derive(Debug, Clone)]
pub struct TargetPartition {
    rule: ShardRule,
    interner: Interner<TargetName>,
    /// Dense target id → shard id.
    shard_of: Vec<u32>,
    /// Shard id → human-readable name (project prefix or `cc<k>`).
    shard_names: Vec<String>,
    /// Shard id → number of member targets.
    shard_sizes: Vec<usize>,
    /// Every dependency edge crossing a shard boundary, in deterministic
    /// (from, to) dense-id order.
    cross_edges: Vec<CrossShardEdge>,
}

impl TargetPartition {
    /// Partition `graph` under `rule`.
    pub fn new(graph: &BuildGraph, rule: ShardRule) -> TargetPartition {
        // Intern every target in sorted-name order (BTreeMap iteration),
        // the deterministic dense-id space everything below indexes.
        let mut interner = Interner::new();
        for name in graph.names() {
            interner.intern(name);
        }
        let n = interner.len();
        match rule {
            ShardRule::ConnectedComponents => {
                let mut uf = UnionFind::new(n);
                for t in graph.targets() {
                    let a = interner.get(&t.name).expect("interned above");
                    for d in &t.deps {
                        let b = interner.get(d).expect("graph is closed");
                        uf.union(a, b);
                    }
                }
                // Number components by the first dense id they contain.
                let mut shard_of = vec![u32::MAX; n];
                let mut shard_names = Vec::new();
                let mut shard_sizes = Vec::new();
                let mut root_to_shard = vec![u32::MAX; n];
                for id in 0..n as u32 {
                    let root = uf.find(id) as usize;
                    if root_to_shard[root] == u32::MAX {
                        root_to_shard[root] = shard_names.len() as u32;
                        shard_names.push(format!("cc{}", shard_names.len()));
                        shard_sizes.push(0);
                    }
                    let s = root_to_shard[root];
                    shard_of[id as usize] = s;
                    shard_sizes[s as usize] += 1;
                }
                TargetPartition {
                    rule,
                    interner,
                    shard_of,
                    shard_names,
                    shard_sizes,
                    cross_edges: Vec::new(),
                }
            }
            ShardRule::TopLevelProject => {
                let mut shard_of = vec![u32::MAX; n];
                let mut shard_names: Vec<String> = Vec::new();
                let mut shard_sizes: Vec<usize> = Vec::new();
                for name in graph.names() {
                    let id = interner.get(name).expect("interned above");
                    let project = top_level_project(name);
                    // Linear scan: shard counts are tiny (dozens), and a
                    // Vec scan keeps numbering order independent of any
                    // hash state.
                    let s = match shard_names.iter().position(|p| p == project) {
                        Some(s) => s as u32,
                        None => {
                            shard_names.push(project.to_string());
                            shard_sizes.push(0);
                            (shard_names.len() - 1) as u32
                        }
                    };
                    shard_of[id as usize] = s;
                    shard_sizes[s as usize] += 1;
                }
                let mut cross_edges = Vec::new();
                for t in graph.targets() {
                    let a = interner.get(&t.name).expect("interned above");
                    for d in &t.deps {
                        let b = interner.get(d).expect("graph is closed");
                        let (sa, sb) = (shard_of[a as usize], shard_of[b as usize]);
                        if sa != sb {
                            cross_edges.push(CrossShardEdge {
                                from: a,
                                to: b,
                                from_shard: sa,
                                to_shard: sb,
                            });
                        }
                    }
                }
                cross_edges.sort_by_key(|e| (e.from, e.to));
                TargetPartition {
                    rule,
                    interner,
                    shard_of,
                    shard_names,
                    shard_sizes,
                    cross_edges,
                }
            }
        }
    }

    /// The rule this partition was computed under.
    pub fn rule(&self) -> ShardRule {
        self.rule
    }

    /// Number of shards (0 only for an empty graph).
    pub fn n_shards(&self) -> usize {
        self.shard_names.len()
    }

    /// Number of partitioned targets.
    pub fn n_targets(&self) -> usize {
        self.shard_of.len()
    }

    /// Shard of a target by name, if the target is in the graph.
    pub fn shard_of_target(&self, name: &TargetName) -> Option<u32> {
        self.interner.get(name).map(|id| self.shard_of[id as usize])
    }

    /// Shard of a target by dense id (panics if out of range).
    pub fn shard_of_id(&self, id: u32) -> u32 {
        self.shard_of[id as usize]
    }

    /// Dense id of a target name, if present (the interning order is the
    /// graph's sorted name order).
    pub fn id_of(&self, name: &TargetName) -> Option<u32> {
        self.interner.get(name)
    }

    /// Per-target shard assignment, indexed by dense id.
    pub fn assignments(&self) -> &[u32] {
        &self.shard_of
    }

    /// Human-readable shard names, indexed by shard id.
    pub fn shard_names(&self) -> &[String] {
        &self.shard_names
    }

    /// Member counts, indexed by shard id.
    pub fn shard_sizes(&self) -> &[usize] {
        &self.shard_sizes
    }

    /// Every dependency edge crossing shards, sorted by (from, to).
    pub fn cross_edges(&self) -> &[CrossShardEdge] {
        &self.cross_edges
    }
}

/// First path segment of the target's package (`""` for root-package
/// targets like `//:all`).
fn top_level_project(name: &TargetName) -> &str {
    let pkg = name.package();
    pkg.split('/').next().unwrap_or(pkg)
}

/// Textbook union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Union by size; ties attach the larger root id under the
        // smaller for determinism.
        let (big, small) = if (self.size[ra as usize], rb) > (self.size[rb as usize], ra) {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RuleKind, Target};

    fn t(label: &str, deps: &[&str]) -> Target {
        let name = TargetName::resolve(label, "").unwrap();
        let deps = deps
            .iter()
            .map(|d| TargetName::resolve(d, "").unwrap())
            .collect();
        Target::new(name, RuleKind::Library, Vec::new(), deps)
    }

    fn graph(targets: Vec<Target>) -> BuildGraph {
        BuildGraph::from_targets(targets).unwrap()
    }

    #[test]
    fn components_split_independent_projects() {
        let g = graph(vec![
            t("//app/a:lib", &["//app/b:lib"]),
            t("//app/b:lib", &[]),
            t("//tools/x:bin", &["//tools/y:lib"]),
            t("//tools/y:lib", &[]),
        ]);
        let p = TargetPartition::new(&g, ShardRule::ConnectedComponents);
        assert_eq!(p.n_shards(), 2);
        assert!(p.cross_edges().is_empty());
        let a = p
            .shard_of_target(&TargetName::resolve("//app/a:lib", "").unwrap())
            .unwrap();
        let b = p
            .shard_of_target(&TargetName::resolve("//app/b:lib", "").unwrap())
            .unwrap();
        let x = p
            .shard_of_target(&TargetName::resolve("//tools/x:bin", "").unwrap())
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, x);
        assert_eq!(p.shard_sizes(), &[2, 2]);
    }

    #[test]
    fn shared_core_collapses_components() {
        let g = graph(vec![
            t("//base:lib", &[]),
            t("//app/a:lib", &["//base:lib"]),
            t("//tools/x:bin", &["//base:lib"]),
        ]);
        let p = TargetPartition::new(&g, ShardRule::ConnectedComponents);
        assert_eq!(p.n_shards(), 1);
        assert_eq!(p.shard_sizes(), &[3]);
    }

    #[test]
    fn top_level_records_cross_edges() {
        let g = graph(vec![
            t("//base:lib", &[]),
            t("//app/a:lib", &["//base:lib"]),
            t("//app/b:lib", &["//app/a:lib"]),
            t("//tools/x:bin", &["//base:lib"]),
        ]);
        let p = TargetPartition::new(&g, ShardRule::TopLevelProject);
        assert_eq!(p.n_shards(), 3); // app, base, tools (sorted name order)
        assert_eq!(p.shard_names(), &["app", "base", "tools"]);
        // Two edges cross: app/a → base and tools/x → base.
        assert_eq!(p.cross_edges().len(), 2);
        for e in p.cross_edges() {
            assert_ne!(e.from_shard, e.to_shard);
            assert_eq!(p.shard_of_id(e.from), e.from_shard);
            assert_eq!(p.shard_of_id(e.to), e.to_shard);
        }
        // The intra-project app/b → app/a edge is not recorded.
        let b = p.id_of(&TargetName::resolve("//app/b:lib", "").unwrap());
        assert!(p.cross_edges().iter().all(|e| Some(e.from) != b));
    }

    #[test]
    fn empty_graph_has_no_shards() {
        let p = TargetPartition::new(&BuildGraph::default(), ShardRule::TopLevelProject);
        assert_eq!(p.n_shards(), 0);
        assert_eq!(p.n_targets(), 0);
    }

    #[test]
    fn root_package_targets_group_together() {
        let g = graph(vec![t("//:all", &[]), t("//:dist", &[])]);
        let p = TargetPartition::new(&g, ShardRule::TopLevelProject);
        assert_eq!(p.n_shards(), 1);
        assert_eq!(p.shard_names(), &[""]);
    }
}
