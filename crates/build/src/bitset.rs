//! Interned-id bitsets for Equation-6 intersection.
//!
//! The union-graph algorithm's Step 2 — "do the affected-name sets
//! intersect?" — is evaluated once per *pair* of pending changes, so over
//! a window of n changes it runs n(n-1)/2 times per epoch. Comparing
//! `BTreeMap<TargetName, _>` keys means hashing or ordering heap-allocated
//! label strings on every probe. This module removes the strings from the
//! hot path: an [`Interner`] maps each distinct [`TargetName`] (or any
//! other key) to a dense `u32` id exactly once, and a [`BitSet`] holds a
//! set of those ids as packed `u64` words, so set intersection becomes a
//! word-wise AND with an early exit on the first nonzero word.
//!
//! [`InternedAffected`] is the bridge from [`AffectedSet`]: the same
//! `target → state` information, with names replaced by interned ids.
//! Its [`InternedAffected::names_intersect`] agrees exactly with
//! [`AffectedSet::names_intersect`], and
//! [`InternedAffected::shared_disagreement`] agrees exactly with the §5.2
//! fast-path comparison (same target affected by both sides with
//! different resulting states) — both are property-tested against the
//! string-keyed originals in `tests/bitset_props.rs`.

use crate::affected::{AffectedSet, AffectedState};
use std::collections::HashMap;
use std::hash::Hash;

/// Maps distinct values to dense `u32` ids, first-come first-numbered.
///
/// Ids are stable for the interner's lifetime: interning the same value
/// twice returns the same id, and [`Interner::resolve`] inverts the
/// mapping. One interner must be shared by every set that will be
/// compared — ids from different interners are meaningless to each other.
#[derive(Debug, Clone, Default)]
pub struct Interner<T> {
    ids: HashMap<T, u32>,
    items: Vec<T>,
}

impl<T: Eq + Hash + Clone> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            ids: HashMap::new(),
            items: Vec::new(),
        }
    }

    /// The id of `item`, assigning the next dense id on first sight.
    pub fn intern(&mut self, item: &T) -> u32 {
        if let Some(&id) = self.ids.get(item) {
            return id;
        }
        let id = u32::try_from(self.items.len()).expect("more than u32::MAX interned items");
        self.ids.insert(item.clone(), id);
        self.items.push(item.clone());
        id
    }

    /// The id of `item` if it has been interned.
    pub fn get(&self, item: &T) -> Option<u32> {
        self.ids.get(item).copied()
    }

    /// The value behind an id.
    pub fn resolve(&self, id: u32) -> Option<&T> {
        self.items.get(id as usize)
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A set of dense `u32` ids packed 64 per word.
///
/// Grows on insert; never shrinks. Equality ignores trailing zero words,
/// so sets built with different capacities compare by content.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set.
    pub fn new() -> Self {
        BitSet { words: Vec::new() }
    }

    /// An empty set with room for ids `0..bits` without reallocating.
    pub fn with_capacity(bits: u32) -> Self {
        BitSet {
            words: vec![0; (bits as usize).div_ceil(64)],
        }
    }

    /// Insert an id; true iff it was not already present.
    pub fn insert(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// True iff the id is present.
    pub fn contains(&self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// True iff the two sets share any id: a word-wise AND with an early
    /// exit on the first nonzero word. This is the Eq.-6 Step-2 probe.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// The ids present in both sets, ascending.
    pub fn intersection<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = u32> + 'a {
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(wi, (a, b))| {
                let mut word = a & b;
                std::iter::from_fn(move || {
                    if word == 0 {
                        return None;
                    }
                    let bit = word.trailing_zeros();
                    word &= word - 1;
                    Some(wi as u32 * 64 + bit)
                })
            })
    }

    /// All ids in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros();
                word &= word - 1;
                Some(wi as u32 * 64 + bit)
            })
        })
    }

    /// Add every id of `other` to this set.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of ids present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff no id is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The packed words (low id first). Trailing zero words may or may
    /// not be present; use [`BitSet::len`]/equality for content questions.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for BitSet {}

impl FromIterator<u32> for BitSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

/// An [`AffectedSet`] with names replaced by interned ids: the id bitset
/// for O(words) intersection plus each id's [`AffectedState`] for the
/// fast-path state comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedAffected {
    bits: BitSet,
    /// `(id, state)` sorted by id.
    states: Vec<(u32, AffectedState)>,
}

impl InternedAffected {
    /// Intern every affected name of `set` through `interner`.
    pub fn from_affected(
        set: &AffectedSet,
        interner: &mut Interner<crate::graph::TargetName>,
    ) -> Self {
        let mut states: Vec<(u32, AffectedState)> = set
            .iter()
            .map(|(name, &state)| (interner.intern(name), state))
            .collect();
        states.sort_unstable_by_key(|&(id, _)| id);
        let bits = states.iter().map(|&(id, _)| id).collect();
        InternedAffected { bits, states }
    }

    /// The id bitset.
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }

    /// The state of an interned target, if affected.
    pub fn state_of(&self, id: u32) -> Option<&AffectedState> {
        self.states
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .map(|i| &self.states[i].1)
    }

    /// Number of affected targets.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True iff no target was affected.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Exactly [`AffectedSet::names_intersect`], as a word-wise AND.
    pub fn names_intersect(&self, other: &InternedAffected) -> bool {
        self.bits.intersects(&other.bits)
    }

    /// The §5.2 fast-path comparison: true iff some target is affected
    /// by both sides with *different* resulting states. Agrees exactly
    /// with the check inside [`crate::conflict::fast_path_conflict`]
    /// when both sets were interned through the same interner.
    pub fn shared_disagreement(&self, other: &InternedAffected) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.bits
            .intersection(&other.bits)
            .any(|id| self.state_of(id) != other.state_of(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TargetName;
    use std::str::FromStr;

    #[test]
    fn interner_assigns_dense_stable_ids() {
        let mut i: Interner<String> = Interner::new();
        let a = i.intern(&"alpha".to_string());
        let b = i.intern(&"beta".to_string());
        assert_eq!((a, b), (0, 1));
        assert_eq!(i.intern(&"alpha".to_string()), 0, "re-intern is stable");
        assert_eq!(i.get(&"beta".to_string()), Some(1));
        assert_eq!(i.get(&"gamma".to_string()), None);
        assert_eq!(i.resolve(0), Some(&"alpha".to_string()));
        assert_eq!(i.resolve(2), None);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn bitset_insert_contains_iter() {
        let mut s = BitSet::new();
        assert!(s.is_empty());
        for id in [3, 64, 64, 200, 0] {
            s.insert(id);
        }
        assert!(!s.insert(200), "duplicate insert reports not-fresh");
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 200]);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(!s.contains(100_000), "probe beyond capacity is false");
    }

    #[test]
    fn bitset_intersection_matches_naive() {
        let a: BitSet = [1u32, 63, 64, 127, 500].into_iter().collect();
        let b: BitSet = [2u32, 64, 127, 1000].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert_eq!(a.intersection(&b).collect::<Vec<_>>(), vec![64, 127]);
        let c: BitSet = [2u32, 65].into_iter().collect();
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c).count(), 0);
        // Disjoint word ranges: no panic, no intersection.
        let d: BitSet = [100_000u32].into_iter().collect();
        assert!(!a.intersects(&d));
    }

    #[test]
    fn bitset_equality_ignores_capacity() {
        let mut a = BitSet::with_capacity(1024);
        let mut b = BitSet::new();
        a.insert(7);
        b.insert(7);
        assert_eq!(a, b);
        b.insert(900);
        assert_ne!(a, b);
        let mut c = BitSet::new();
        c.union_with(&b);
        assert_eq!(b, c);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn interned_affected_reflects_the_source_set() {
        use crate::affected::{AffectedSet, SnapshotAnalysis};
        use sq_vcs::{ObjectStore, Patch, RepoPath, Tree};
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        for (path, content) in [
            ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
            ("lib/l.rs", "lib-v1"),
            ("tool/BUILD", "library(name = \"tool\", srcs = [\"t.rs\"])"),
            ("tool/t.rs", "tool-v1"),
        ] {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(RepoPath::new(path).unwrap(), id);
        }
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let ta = Patch::write(RepoPath::new("lib/l.rs").unwrap(), "lib-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let tb = Patch::write(RepoPath::new("tool/t.rs").unwrap(), "tool-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let da = AffectedSet::between(&base, &SnapshotAnalysis::analyze(&ta, &store).unwrap());
        let db = AffectedSet::between(&base, &SnapshotAnalysis::analyze(&tb, &store).unwrap());
        let mut interner: Interner<TargetName> = Interner::new();
        let ia = InternedAffected::from_affected(&da, &mut interner);
        let ib = InternedAffected::from_affected(&db, &mut interner);
        let ia2 = InternedAffected::from_affected(&da, &mut interner);
        assert_eq!(ia, ia2, "re-interning is deterministic");
        assert_eq!(ia.len(), da.len());
        assert_eq!(
            ia.names_intersect(&ib),
            da.names_intersect(&db),
            "bitset Step 2 agrees with the string-keyed original"
        );
        assert!(!ia.shared_disagreement(&ib));
        // Same target, different content hashes: disagreement.
        let ta2 = Patch::write(RepoPath::new("lib/l.rs").unwrap(), "lib-v3")
            .apply(&tree, &mut store)
            .unwrap();
        let da2 = AffectedSet::between(&base, &SnapshotAnalysis::analyze(&ta2, &store).unwrap());
        let ia3 = InternedAffected::from_affected(&da2, &mut interner);
        assert!(ia.names_intersect(&ia3));
        assert!(ia.shared_disagreement(&ia3));
        // A state can be looked up by interned id.
        let lib = TargetName::from_str("//lib:lib").unwrap();
        let lib_id = interner.get(&lib).unwrap();
        assert_eq!(ia.state_of(lib_id), da.get(&lib));
        assert_eq!(ia.state_of(u32::MAX), None);
    }
}
