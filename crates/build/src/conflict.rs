//! Conflict detection (paper Section 5.2, Equation 6 and Steps 1–4).
//!
//! Two changes Cᵢ, Cⱼ conflict when building them together is not the
//! same as building them apart — Equation 6:
//!
//! ```text
//! δ(H⊕Cᵢ) ∪ δ(H⊕Cⱼ) ≠ δ(H⊕Cᵢ⊕Cⱼ)
//! ```
//!
//! [`eq6_conflict`] evaluates that oracle literally, which requires
//! analyzing the *composed* snapshot — n² graph builds over a pending
//! window of n changes. The paper's production answer is the union-graph
//! algorithm ([`union_graph_conflict`], Steps 1–4): build only the n
//! per-change graphs, then decide conflicts from affected-name overlap
//! and dependency reachability across the union of the graphs. It is
//! deliberately conservative — it may report a false conflict, never a
//! false independence. Figure 8's counterexample (a change that adds a
//! dependency on a target another change touched, with disjoint affected
//! *names*) is exactly what Step 4's reachability walk exists to catch.
//!
//! When neither change alters the build graph's structure — 92.1% (iOS)
//! / 98.4% (Backend) of changes per §5.2 — [`fast_path_conflict`] decides
//! *exactly*: with the dependency structure frozen, hashes propagate
//! identically in the composed snapshot, so comparing per-target states
//! of the two affected sets is equivalent to Equation 6.

use crate::affected::{AffectedSet, AffectedState, SnapshotAnalysis};
use crate::error::BuildError;
use crate::graph::TargetName;
use sq_vcs::merge::merge_patches;
use sq_vcs::{ObjectStore, Patch, RepoPath, Tree};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Outcome of the full tiered conflict check ([`changes_conflict`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictVerdict {
    /// The patches overlap textually; a plain merge already fails.
    TextualConflict,
    /// The patches merge cleanly but affect overlapping or
    /// dependency-related build targets (a semantic conflict).
    TargetConflict,
    /// The changes can land in either order with identical results.
    Independent,
}

impl ConflictVerdict {
    /// True iff the changes must be serialized.
    pub fn is_conflict(&self) -> bool {
        !matches!(self, ConflictVerdict::Independent)
    }
}

/// The Equation 6 oracle: compare the union of the two affected sets
/// against the affected set of the composed change.
///
/// Affected sets are compared as maps `target → state`: two changes that
/// touch the same target with *different* resulting hashes disagree about
/// its artifact, which is a conflict even though the name sets coincide —
/// and a composed state differing from the separate ones (Fig. 8's
/// dependency coupling) is a conflict even though the name sets are
/// disjoint.
pub fn eq6_conflict(
    base: &SnapshotAnalysis,
    a: &SnapshotAnalysis,
    b: &SnapshotAnalysis,
    ab: &SnapshotAnalysis,
) -> bool {
    let da = AffectedSet::between(base, a);
    let db = AffectedSet::between(base, b);
    let dab = AffectedSet::between(base, ab);
    // The union is only well-defined where the sides agree.
    let mut union: BTreeMap<&TargetName, AffectedState> = BTreeMap::new();
    for (name, &state) in da.iter().chain(db.iter()) {
        match union.insert(name, state) {
            Some(prev) if prev != state => return true,
            _ => {}
        }
    }
    // Compare the union against the composed delta, keys and values.
    if union.len() != dab.len() {
        return true;
    }
    let disagrees = dab
        .iter()
        .any(|(name, state)| union.get(name) != Some(state));
    disagrees
}

/// The §5.2 fast path: decide exactly, without analyzing the composed
/// snapshot, when neither change touches the build graph.
///
/// Applicable iff both changes leave the target graph structurally
/// identical to the base *and* touch no BUILD file (the second condition
/// guarantees the composed snapshot keeps the same structure too).
/// Returns `None` when not applicable. When applicable: with structure
/// frozen, a target's composed hash differs from its separate hashes only
/// if the two sides pushed *different* hashes onto a shared target — so
/// conflict ⇔ some target is affected by both sides with different
/// states. This agrees with Equation 6 exactly (tested by the
/// `conflict_equivalence_prop` suite).
pub fn fast_path_conflict(
    base: &SnapshotAnalysis,
    a: &SnapshotAnalysis,
    b: &SnapshotAnalysis,
) -> Option<bool> {
    let keeps_graph = |side: &SnapshotAnalysis| {
        base.same_graph_structure(side)
            && base
                .tree
                .changed_paths(&side.tree)
                .iter()
                .all(|p| p.file_name() != "BUILD")
    };
    if !keeps_graph(a) || !keeps_graph(b) {
        return None;
    }
    let da = AffectedSet::between(base, a);
    if da.is_empty() {
        // A no-op side cannot disagree with anything; skip materializing
        // the other side's set entirely.
        return Some(false);
    }
    let db = AffectedSet::between(base, b);
    if db.is_empty() {
        return Some(false);
    }
    let shared_disagreement = da
        .iter()
        .any(|(name, state)| db.get(name).is_some_and(|other| other != state));
    Some(shared_disagreement)
}

/// The union-graph algorithm (Steps 1–4): conservative conflict
/// detection from the two per-change analyses alone.
///
/// 1. Build each change's target graph and affected set (done by the
///    caller via [`SnapshotAnalysis::analyze`]);
/// 2. conflict if the affected-name sets intersect;
/// 3. otherwise form the union of the dependency graphs (base and both
///    sides — the composed snapshot's edges are a subset of this union);
/// 4. conflict if any affected target of one change can reach, or be
///    reached from, an affected target of the other along dependency
///    edges (Fig. 8: `z → x` makes `{z}` and `{x, y}` conflict).
///
/// Never misses an Equation 6 conflict on cleanly-merging changes; may
/// report a conflict Equation 6 would clear (the price of skipping the
/// composed analysis).
pub fn union_graph_conflict(
    base: &SnapshotAnalysis,
    a: &SnapshotAnalysis,
    b: &SnapshotAnalysis,
) -> bool {
    let da = AffectedSet::between(base, a);
    let db = AffectedSet::between(base, b);
    // Step 2: a target affected by both sides.
    if da.names_intersect(&db) {
        return true;
    }
    // A genuinely no-op side — empty delta over an unchanged tree — has
    // nothing to couple through: the composed snapshot is the other side
    // alone. Decide before materializing the name sets and the union
    // dependency maps below.
    let noop = |side: &SnapshotAnalysis, delta: &AffectedSet| {
        delta.is_empty() && base.tree.changed_paths(&side.tree).is_empty()
    };
    if noop(a, &da) || noop(b, &db) {
        return false;
    }
    let na = visible_names(base, a, b, &da);
    let nb = visible_names(base, b, a, &db);
    if na.intersection(&nb).next().is_some() {
        return true;
    }
    // Steps 3–4: dependency reachability over the union of the graphs.
    let mut deps: HashMap<&TargetName, BTreeSet<&TargetName>> = HashMap::new();
    let mut rdeps: HashMap<&TargetName, BTreeSet<&TargetName>> = HashMap::new();
    for analysis in [base, a, b] {
        for target in analysis.graph.targets() {
            for dep in &target.deps {
                deps.entry(&target.name).or_default().insert(dep);
                rdeps.entry(dep).or_default().insert(&target.name);
            }
        }
    }
    reaches(&deps, &na, &nb) || reaches(&rdeps, &na, &nb)
}

/// One side's affected names, widened with *cross-visible* targets:
/// targets declared in the base or in the other side's graph whose
/// sources intersect this side's changed files. A change can touch a file
/// its own graph never references but the other side's graph does (the
/// other side is adding it as a source); without this widening the
/// union-graph pass would be blind to that coupling.
fn visible_names<'a>(
    base: &'a SnapshotAnalysis,
    side: &'a SnapshotAnalysis,
    other: &'a SnapshotAnalysis,
    delta: &'a AffectedSet,
) -> HashSet<&'a TargetName> {
    let mut names: HashSet<&TargetName> = delta.names().collect();
    let changed: HashSet<&RepoPath> = base.tree.changed_paths(&side.tree).into_iter().collect();
    if changed.is_empty() {
        return names;
    }
    for analysis in [base, other] {
        for target in analysis.graph.targets() {
            if target.srcs.iter().any(|s| changed.contains(s)) {
                names.insert(&target.name);
            }
        }
    }
    names
}

/// True iff some member of `from` reaches some member of `to` along
/// `edges` (breadth-first; `from ∩ to` is checked by the caller).
fn reaches<'a>(
    edges: &HashMap<&'a TargetName, BTreeSet<&'a TargetName>>,
    from: &HashSet<&'a TargetName>,
    to: &HashSet<&'a TargetName>,
) -> bool {
    let mut seen: HashSet<&TargetName> = from.clone();
    let mut queue: VecDeque<&TargetName> = from.iter().copied().collect();
    while let Some(name) = queue.pop_front() {
        if let Some(next) = edges.get(name) {
            for &n in next {
                if to.contains(n) {
                    return true;
                }
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
    }
    false
}

/// The full production tiering over two concrete patches (Section 5.2 as
/// deployed): textual merge first, then the fast path, then the
/// union-graph algorithm. Never analyzes the composed snapshot.
///
/// Errors only if a *separate* snapshot fails to apply or analyze (broken
/// BUILD files, cycles); callers treat that conservatively.
pub fn changes_conflict(
    tree: &Tree,
    store: &mut ObjectStore,
    a: &Patch,
    b: &Patch,
) -> Result<ConflictVerdict, BuildError> {
    if merge_patches(tree, store, a, b).is_err() {
        return Ok(ConflictVerdict::TextualConflict);
    }
    let ta = a.apply(tree, store)?;
    let tb = b.apply(tree, store)?;
    let base = SnapshotAnalysis::analyze(tree, store)?;
    let aa = SnapshotAnalysis::analyze(&ta, store)?;
    let ab = SnapshotAnalysis::analyze(&tb, store)?;
    let conflict = match fast_path_conflict(&base, &aa, &ab) {
        Some(decided) => decided,
        None => union_graph_conflict(&base, &aa, &ab),
    };
    Ok(if conflict {
        ConflictVerdict::TargetConflict
    } else {
        ConflictVerdict::Independent
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    fn workspace(files: &[(&str, &str)]) -> (Tree, ObjectStore) {
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        for (path, content) in files {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(p(path), id);
        }
        (tree, store)
    }

    /// Analyze base, both sides, and the composition.
    fn analyze_all(
        tree: &Tree,
        store: &mut ObjectStore,
        a: &Patch,
        b: &Patch,
    ) -> (
        SnapshotAnalysis,
        SnapshotAnalysis,
        SnapshotAnalysis,
        SnapshotAnalysis,
    ) {
        let ta = a.apply(tree, store).unwrap();
        let tb = b.apply(tree, store).unwrap();
        let tab = a.compose(b).apply(tree, store).unwrap();
        (
            SnapshotAnalysis::analyze(tree, store).unwrap(),
            SnapshotAnalysis::analyze(&ta, store).unwrap(),
            SnapshotAnalysis::analyze(&tb, store).unwrap(),
            SnapshotAnalysis::analyze(&tab, store).unwrap(),
        )
    }

    /// Figure 8: targets x, y (deps on x), z. C1 edits a source of x;
    /// C2 makes z depend on x. The affected-name sets — {x, y} and {z} —
    /// are disjoint, yet the changes conflict: composed, z's hash folds
    /// in the *edited* x, so δ(H⊕C1⊕C2) ≠ δ(H⊕C1) ∪ δ(H⊕C2).
    #[test]
    fn fig8_counterexample() {
        let (tree, mut store) = workspace(&[
            ("x/BUILD", "library(name = \"x\", srcs = [\"a.rs\"])"),
            ("x/a.rs", "x-v1"),
            (
                "y/BUILD",
                "library(name = \"y\", srcs = [\"a.rs\"], deps = [\"//x:x\"])",
            ),
            ("y/a.rs", "y-v1"),
            ("z/BUILD", "library(name = \"z\", srcs = [\"a.rs\"])"),
            ("z/a.rs", "z-v1"),
        ]);
        let c1 = Patch::write(p("x/a.rs"), "x-v2");
        let c2 = Patch::write(
            p("z/BUILD"),
            "library(name = \"z\", srcs = [\"a.rs\"], deps = [\"//x:x\"])",
        );
        let (base, a1, a2, a12) = analyze_all(&tree, &mut store, &c1, &c2);
        let d1 = AffectedSet::between(&base, &a1);
        let d2 = AffectedSet::between(&base, &a2);
        // The paper's setup: affected names are disjoint...
        assert!(!d1.names_intersect(&d2));
        // ...the fast path correctly refuses (C2 altered the graph)...
        assert_eq!(fast_path_conflict(&base, &a1, &a2), None);
        // ...and both the oracle and the union-graph walk see the
        // dependency-induced conflict.
        assert!(eq6_conflict(&base, &a1, &a2, &a12));
        assert!(union_graph_conflict(&base, &a1, &a2));
        assert!(union_graph_conflict(&base, &a2, &a1), "symmetric");
        // The tiered production check agrees.
        assert_eq!(
            changes_conflict(&tree, &mut store, &c1, &c2).unwrap(),
            ConflictVerdict::TargetConflict
        );
    }

    /// lib ← app, plus an unrelated tool package.
    fn chain_workspace() -> (Tree, ObjectStore) {
        workspace(&[
            (
                "lib/BUILD",
                "library(name = \"lib\", srcs = [\"l.rs\", \"l2.rs\"])",
            ),
            ("lib/l.rs", "lib-1"),
            ("lib/l2.rs", "lib-2"),
            (
                "app/BUILD",
                "binary(name = \"app\", srcs = [\"m.rs\"], deps = [\"//lib:lib\"])",
            ),
            ("app/m.rs", "app-1"),
            ("tool/BUILD", "library(name = \"tool\", srcs = [\"t.rs\"])"),
            ("tool/t.rs", "tool-1"),
        ])
    }

    #[test]
    fn union_graph_agrees_with_eq6_on_fixtures() {
        // (patch a, patch b, Eq. 6 verdict, union-graph verdict). The
        // union graph must be conservative everywhere; the one case where
        // it over-approximates (identical edits: same affected names,
        // fully agreeing states) is expected — it skips hash comparison.
        let cases: Vec<(Patch, Patch, bool, bool)> = vec![
            // Same target, different sources: both deltas carry //lib:lib
            // with different hashes — conflict.
            (
                Patch::write(p("lib/l.rs"), "lib-1a"),
                Patch::write(p("lib/l2.rs"), "lib-2b"),
                true,
                true,
            ),
            // Dependency-related targets: lib's edit re-hashes app.
            (
                Patch::write(p("lib/l.rs"), "lib-1a"),
                Patch::write(p("app/m.rs"), "app-1b"),
                true,
                true,
            ),
            // Unrelated packages: independent, and the union graph agrees.
            (
                Patch::write(p("lib/l.rs"), "lib-1a"),
                Patch::write(p("tool/t.rs"), "tool-1b"),
                false,
                false,
            ),
            // Identical edits: Eq. 6 clears them (the sides agree on every
            // state); name overlap still trips the conservative pass.
            (
                Patch::write(p("lib/l.rs"), "lib-same"),
                Patch::write(p("lib/l.rs"), "lib-same"),
                false,
                true,
            ),
        ];
        for (i, (ca, cb, want_exact, want_cheap)) in cases.into_iter().enumerate() {
            let (tree, mut store) = chain_workspace();
            let (base, aa, ab, aab) = analyze_all(&tree, &mut store, &ca, &cb);
            let exact = eq6_conflict(&base, &aa, &ab, &aab);
            assert_eq!(exact, want_exact, "case {i}: oracle");
            let cheap = union_graph_conflict(&base, &aa, &ab);
            assert_eq!(cheap, want_cheap, "case {i}: union graph");
            assert!(!exact || cheap, "case {i}: union graph missed a conflict");
            assert_eq!(
                cheap,
                union_graph_conflict(&base, &ab, &aa),
                "case {i}: symmetry"
            );
        }
    }

    #[test]
    fn fast_path_applies_iff_no_build_file_changes() {
        let (tree, mut store) = chain_workspace();
        // Source-only edits on both sides: eligible, and exact.
        let ca = Patch::write(p("lib/l.rs"), "lib-1a");
        let cb = Patch::write(p("tool/t.rs"), "tool-1b");
        let (base, aa, ab, aab) = analyze_all(&tree, &mut store, &ca, &cb);
        let fast = fast_path_conflict(&base, &aa, &ab);
        assert_eq!(fast, Some(false));
        assert_eq!(fast, Some(eq6_conflict(&base, &aa, &ab, &aab)));

        // Conflicting source edits: still eligible, detects the conflict.
        let (tree, mut store) = chain_workspace();
        let ca = Patch::write(p("lib/l.rs"), "lib-1a");
        let cb = Patch::write(p("lib/l2.rs"), "lib-2b");
        let (base, aa, ab, aab) = analyze_all(&tree, &mut store, &ca, &cb);
        let fast = fast_path_conflict(&base, &aa, &ab);
        assert_eq!(fast, Some(true));
        assert_eq!(fast, Some(eq6_conflict(&base, &aa, &ab, &aab)));

        // A BUILD-file change on either side disables the fast path, even
        // if it leaves the parsed structure intact (comment-only edit):
        // the *composed* structure is no longer guaranteed.
        let (tree, mut store) = chain_workspace();
        let ca = Patch::write(
            p("tool/BUILD"),
            "# note\nlibrary(name = \"tool\", srcs = [\"t.rs\"])",
        );
        let cb = Patch::write(p("lib/l.rs"), "lib-1a");
        let ta = ca.apply(&tree, &mut store).unwrap();
        let tb = cb.apply(&tree, &mut store).unwrap();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let aa = SnapshotAnalysis::analyze(&ta, &store).unwrap();
        let ab = SnapshotAnalysis::analyze(&tb, &store).unwrap();
        assert!(
            base.same_graph_structure(&aa),
            "comment edit keeps structure"
        );
        assert_eq!(fast_path_conflict(&base, &aa, &ab), None);
        assert_eq!(fast_path_conflict(&base, &ab, &aa), None, "symmetric");
    }

    #[test]
    fn tiered_check_classifies_all_three_verdicts() {
        // Textual: same file, different content.
        let (tree, mut store) = chain_workspace();
        let v = changes_conflict(
            &tree,
            &mut store,
            &Patch::write(p("lib/l.rs"), "ours"),
            &Patch::write(p("lib/l.rs"), "theirs"),
        )
        .unwrap();
        assert_eq!(v, ConflictVerdict::TextualConflict);
        assert!(v.is_conflict());

        // Target: different files of the same target.
        let v = changes_conflict(
            &tree,
            &mut store,
            &Patch::write(p("lib/l.rs"), "ours"),
            &Patch::write(p("lib/l2.rs"), "theirs"),
        )
        .unwrap();
        assert_eq!(v, ConflictVerdict::TargetConflict);
        assert!(v.is_conflict());

        // Independent: unrelated packages.
        let v = changes_conflict(
            &tree,
            &mut store,
            &Patch::write(p("lib/l.rs"), "ours"),
            &Patch::write(p("tool/t.rs"), "theirs"),
        )
        .unwrap();
        assert_eq!(v, ConflictVerdict::Independent);
        assert!(!v.is_conflict());
    }

    #[test]
    fn broken_build_file_surfaces_as_error() {
        let (tree, mut store) = chain_workspace();
        let bad = Patch::write(p("lib/BUILD"), "library(name = ");
        let ok = Patch::write(p("tool/t.rs"), "tool-1b");
        assert!(matches!(
            changes_conflict(&tree, &mut store, &bad, &ok),
            Err(BuildError::Parse { .. })
        ));
    }
}
