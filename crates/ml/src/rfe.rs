//! Recursive feature elimination (RFE).
//!
//! "To avoid overfitting the models and keeping the computation during
//! actual prediction fast, we also ran our model against recursive
//! feature elimination. This helped us reduce the set of features to just
//! the bare minimum" (paper Section 7.2).
//!
//! The procedure: standardize, train, drop the `step` features with the
//! smallest |weight|, retrain, repeat until `keep` features remain.

use crate::dataset::{Dataset, Scaler};
use crate::logistic::{LogisticRegression, TrainConfig};

/// Outcome of an RFE run.
#[derive(Debug, Clone)]
pub struct RfeReport {
    /// Indices (into the original schema) of the surviving features.
    pub selected: Vec<usize>,
    /// Names of the surviving features, in original order.
    pub selected_names: Vec<String>,
    /// Validation accuracy after each elimination round (first entry is
    /// the full model).
    pub accuracy_per_round: Vec<f64>,
    /// The final model, trained on the surviving standardized features.
    pub model: LogisticRegression,
    /// Scaler fitted on the surviving features of the training set.
    pub scaler: Scaler,
}

/// Run RFE down to `keep` features, eliminating `step` per round.
///
/// `train`/`valid` must share a schema. Panics if `keep` is zero or
/// exceeds the schema width, or if `step` is zero.
pub fn recursive_feature_elimination(
    train: &Dataset,
    valid: &Dataset,
    keep: usize,
    step: usize,
    config: &TrainConfig,
) -> RfeReport {
    let width = train.n_features();
    assert!(keep >= 1 && keep <= width, "keep out of range");
    assert!(step >= 1, "step must be positive");
    assert_eq!(width, valid.n_features(), "schema mismatch");

    let mut active: Vec<usize> = (0..width).collect();
    let mut accuracy_per_round = Vec::new();

    loop {
        let sub_train = train.select_columns(&active);
        let sub_valid = valid.select_columns(&active);
        let scaler = Scaler::fit(&sub_train);
        let z_train = scaler.transform(&sub_train);
        let z_valid = scaler.transform(&sub_valid);
        let (model, _) = LogisticRegression::fit(&z_train, config);
        accuracy_per_round.push(model.accuracy(&z_valid));

        if active.len() <= keep {
            let selected_names = active
                .iter()
                .map(|&i| train.feature_names()[i].clone())
                .collect();
            return RfeReport {
                selected: active,
                selected_names,
                accuracy_per_round,
                model,
                scaler,
            };
        }

        // Rank surviving features by |weight| and drop the weakest.
        let ranking = model.importance_ranking(); // indices into `active`
        let n_drop = step.min(active.len() - keep);
        let drop_local: Vec<usize> = ranking[ranking.len() - n_drop..].to_vec();
        let mut next: Vec<usize> = active
            .iter()
            .enumerate()
            .filter(|(local, _)| !drop_local.contains(local))
            .map(|(_, &orig)| orig)
            .collect();
        next.sort_unstable();
        active = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_sim::Xoshiro256StarStar;

    /// 2 informative features out of 8; the rest pure noise.
    fn noisy_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let names: Vec<String> = (0..8).map(|i| format!("f{i}")).collect();
        let mut d = Dataset::new(names);
        for _ in 0..n {
            let mut row: Vec<f64> = (0..8).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            let label = row[2] + 2.0 * row[5] > 0.0;
            // Mild noise so it's not perfectly separable.
            row[2] += (rng.next_f64() - 0.5) * 0.1;
            d.push(row, label);
        }
        d
    }

    #[test]
    fn rfe_keeps_the_informative_features() {
        let train = noisy_dataset(3000, 1);
        let valid = noisy_dataset(800, 2);
        let report = recursive_feature_elimination(&train, &valid, 2, 1, &TrainConfig::default());
        assert_eq!(
            report.selected,
            vec![2, 5],
            "selected = {:?}",
            report.selected
        );
        assert_eq!(
            report.selected_names,
            vec!["f2".to_string(), "f5".to_string()]
        );
        // Accuracy with just the two informative features stays high.
        assert!(
            *report.accuracy_per_round.last().unwrap() > 0.95,
            "rounds = {:?}",
            report.accuracy_per_round
        );
    }

    #[test]
    fn rfe_round_count() {
        let train = noisy_dataset(500, 3);
        let valid = noisy_dataset(200, 4);
        let report = recursive_feature_elimination(&train, &valid, 4, 2, &TrainConfig::default());
        // 8 → 6 → 4: three training rounds recorded.
        assert_eq!(report.accuracy_per_round.len(), 3);
        assert_eq!(report.selected.len(), 4);
    }

    #[test]
    fn rfe_with_keep_equal_width_is_one_round() {
        let train = noisy_dataset(300, 5);
        let valid = noisy_dataset(100, 6);
        let report = recursive_feature_elimination(&train, &valid, 8, 1, &TrainConfig::default());
        assert_eq!(report.accuracy_per_round.len(), 1);
        assert_eq!(report.selected, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn rfe_step_clamps_to_not_overshoot_keep() {
        let train = noisy_dataset(300, 7);
        let valid = noisy_dataset(100, 8);
        let report = recursive_feature_elimination(&train, &valid, 3, 100, &TrainConfig::default());
        assert_eq!(report.selected.len(), 3);
    }

    #[test]
    #[should_panic]
    fn rfe_rejects_zero_keep() {
        let d = noisy_dataset(50, 9);
        recursive_feature_elimination(&d, &d, 0, 1, &TrainConfig::default());
    }

    #[test]
    fn final_model_predicts_through_scaler() {
        let train = noisy_dataset(2000, 10);
        let valid = noisy_dataset(500, 11);
        let report = recursive_feature_elimination(&train, &valid, 2, 2, &TrainConfig::default());
        // Use the report's scaler + model on a fresh projected row.
        let fresh = noisy_dataset(1, 12);
        let projected = fresh.select_columns(&report.selected);
        let mut row = projected.rows()[0].clone();
        report.scaler.transform_row(&mut row);
        let p = report.model.predict_row(&row);
        assert!((0.0..=1.0).contains(&p));
    }
}
