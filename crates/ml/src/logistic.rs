//! Binary logistic regression trained with mini-batch SGD.
//!
//! The paper: "SubmitQueue uses the conventional regression model for
//! predicting probabilities of a change success or a change failure"
//! (Section 4.2.1) trained offline with scikit-learn (Section 7.2). The
//! model here is the same mathematical object — `P(y=1|x) = σ(w·x + b)`
//! minimizing L2-regularized log-loss — with a plain SGD optimizer.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};
use sq_sim::Xoshiro256StarStar;

/// The numerically-stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 regularization strength (applied per batch, scaled by lr).
    pub l2: f64,
    /// RNG seed for batch shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.1,
            epochs: 60,
            batch_size: 32,
            l2: 1e-4,
            seed: 42,
        }
    }
}

/// A trained (or in-training) logistic model.
///
/// ```
/// use sq_ml::{Dataset, LogisticRegression, TrainConfig};
///
/// let mut data = Dataset::new(vec!["x".into()]);
/// for i in -50..50 {
///     data.push(vec![i as f64], i > 0);
/// }
/// let (model, _losses) = LogisticRegression::fit(&data, &TrainConfig::default());
/// assert!(model.predict_row(&[10.0]) > 0.9);
/// assert!(model.predict_row(&[-10.0]) < 0.1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// An untrained model of the given dimensionality (all-zero weights
    /// ⇒ predicts 0.5 everywhere).
    pub fn zeros(n_features: usize) -> Self {
        LogisticRegression {
            weights: vec![0.0; n_features],
            bias: 0.0,
        }
    }

    /// Fit on a dataset. Returns the per-epoch training log-loss so
    /// callers can check convergence.
    ///
    /// # Panics
    /// Panics on an empty dataset or zero batch size.
    pub fn fit(data: &Dataset, config: &TrainConfig) -> (LogisticRegression, Vec<f64>) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(config.batch_size > 0);
        let d = data.n_features();
        let mut model = LogisticRegression::zeros(d);
        let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for batch in order.chunks(config.batch_size) {
                let mut grad_w = vec![0.0; d];
                let mut grad_b = 0.0;
                for &i in batch {
                    let row = &data.rows()[i];
                    let y = if data.labels()[i] { 1.0 } else { 0.0 };
                    let p = model.predict_row(row);
                    let err = p - y;
                    for (g, &x) in grad_w.iter_mut().zip(row) {
                        *g += err * x;
                    }
                    grad_b += err;
                }
                let scale = config.learning_rate / batch.len() as f64;
                for (w, g) in model.weights.iter_mut().zip(&grad_w) {
                    *w -= scale * g + config.learning_rate * config.l2 * *w;
                }
                model.bias -= scale * grad_b;
            }
            losses.push(model.log_loss(data));
        }
        (model, losses)
    }

    /// `P(y = 1 | x)` for one feature row.
    ///
    /// # Panics
    /// Panics if the row width does not match the model.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature width mismatch");
        let z: f64 = self
            .weights
            .iter()
            .zip(row)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }

    /// Predicted probabilities for every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.rows().iter().map(|r| self.predict_row(r)).collect()
    }

    /// Mean log-loss over a dataset.
    pub fn log_loss(&self, data: &Dataset) -> f64 {
        crate::metrics::log_loss(&self.predict(data), data.labels())
    }

    /// Classification accuracy at threshold 0.5.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        crate::metrics::accuracy(&self.predict(data), data.labels(), 0.5)
    }

    /// The learned weights (one per feature, in schema order).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Feature indices ranked by |weight| descending — the importance
    /// ranking RFE and the Section 7.2 feature report use. Only
    /// meaningful on standardized features.
    pub fn importance_ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.weights.len()).collect();
        idx.sort_by(|&a, &b| {
            self.weights[b]
                .abs()
                .partial_cmp(&self.weights[a].abs())
                .expect("weights are finite")
                .then(a.cmp(&b))
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Scaler;

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(30.0) > 0.999999);
        assert!(sigmoid(-30.0) < 1e-6);
        // Stable at extremes.
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
        // Symmetry σ(-z) = 1 - σ(z).
        for z in [-3.0, -0.5, 0.7, 2.2] {
            assert!((sigmoid(-z) - (1.0 - sigmoid(z))).abs() < 1e-12);
        }
    }

    /// A linearly separable dataset: label = (2x₀ − x₁ > 0), plus noise
    /// features.
    fn separable(n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["signal0".into(), "signal1".into(), "noise".into()]);
        for _ in 0..n {
            let x0 = rng.next_f64() * 4.0 - 2.0;
            let x1 = rng.next_f64() * 4.0 - 2.0;
            let noise = rng.next_f64();
            d.push(vec![x0, x1, noise], 2.0 * x0 - x1 > 0.0);
        }
        d
    }

    #[test]
    fn learns_a_separable_problem() {
        let data = separable(2000, 1);
        let (model, losses) = LogisticRegression::fit(&data, &TrainConfig::default());
        assert!(
            model.accuracy(&data) > 0.97,
            "acc = {}",
            model.accuracy(&data)
        );
        // Loss decreased from the first epoch to the last.
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn generalizes_to_unseen_data() {
        let train = separable(2000, 2);
        let test = separable(500, 3);
        let (model, _) = LogisticRegression::fit(&train, &TrainConfig::default());
        assert!(
            model.accuracy(&test) > 0.95,
            "acc = {}",
            model.accuracy(&test)
        );
    }

    #[test]
    fn weight_signs_match_the_generating_rule() {
        let data = separable(2000, 4);
        let scaler = Scaler::fit(&data);
        let z = scaler.transform(&data);
        let (model, _) = LogisticRegression::fit(&z, &TrainConfig::default());
        let w = model.weights();
        assert!(w[0] > 0.0, "x0 enters positively");
        assert!(w[1] < 0.0, "x1 enters negatively");
        // On standardized features, the noise weight is far smaller.
        assert!(w[2].abs() < w[0].abs() / 5.0, "weights = {w:?}");
        // Importance ranking puts the two signals first.
        let ranking = model.importance_ranking();
        assert_eq!(&ranking[2..], &[2]);
    }

    #[test]
    fn untrained_model_predicts_half() {
        let m = LogisticRegression::zeros(3);
        assert_eq!(m.predict_row(&[1.0, -4.0, 9.0]), 0.5);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let data = separable(500, 5);
        let (m1, _) = LogisticRegression::fit(&data, &TrainConfig::default());
        let (m2, _) = LogisticRegression::fit(&data, &TrainConfig::default());
        assert_eq!(m1.weights(), m2.weights());
        assert_eq!(m1.bias(), m2.bias());
    }

    #[test]
    #[should_panic]
    fn empty_dataset_rejected() {
        let d = Dataset::new(vec!["a".into()]);
        LogisticRegression::fit(&d, &TrainConfig::default());
    }

    #[test]
    #[should_panic]
    fn width_mismatch_rejected() {
        let m = LogisticRegression::zeros(2);
        m.predict_row(&[1.0]);
    }

    #[test]
    fn l2_shrinks_weights() {
        let data = separable(1000, 6);
        let weak = TrainConfig {
            l2: 0.0,
            ..TrainConfig::default()
        };
        let strong = TrainConfig {
            l2: 0.5,
            ..TrainConfig::default()
        };
        let (m_weak, _) = LogisticRegression::fit(&data, &weak);
        let (m_strong, _) = LogisticRegression::fit(&data, &strong);
        let norm = |m: &LogisticRegression| -> f64 {
            m.weights().iter().map(|w| w * w).sum::<f64>().sqrt()
        };
        assert!(norm(&m_strong) < norm(&m_weak));
    }
}
