//! Classification metrics.

/// A 2×2 confusion matrix at a fixed threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Positive predicted positive.
    pub tp: usize,
    /// Negative predicted positive.
    pub fp: usize,
    /// Negative predicted negative.
    pub tn: usize,
    /// Positive predicted negative.
    pub fn_: usize,
}

impl Confusion {
    /// Precision: TP / (TP + FP); 0 when undefined.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall: TP / (TP + FN); 0 when undefined.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1: harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all four cells.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Build the confusion matrix of probability predictions against labels
/// at `threshold`.
pub fn confusion(probs: &[f64], labels: &[bool], threshold: f64) -> Confusion {
    assert_eq!(probs.len(), labels.len());
    let mut c = Confusion::default();
    for (&p, &y) in probs.iter().zip(labels) {
        match (p >= threshold, y) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, false) => c.tn += 1,
            (false, true) => c.fn_ += 1,
        }
    }
    c
}

/// Classification accuracy at `threshold`.
pub fn accuracy(probs: &[f64], labels: &[bool], threshold: f64) -> f64 {
    confusion(probs, labels, threshold).accuracy()
}

/// Mean binary cross-entropy, with probabilities clamped away from 0/1
/// for numerical safety.
pub fn log_loss(probs: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = p.clamp(eps, 1.0 - eps);
            if y {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / probs.len() as f64
}

/// ROC-AUC via the rank-sum (Mann–Whitney U) formulation, with midrank
/// handling for tied scores.
///
/// Returns 0.5 when either class is absent (no ranking information).
pub fn roc_auc(probs: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort indices by score ascending; assign midranks to ties.
    let mut idx: Vec<usize> = (0..probs.len()).collect();
    idx.sort_by(|&a, &b| probs[a].partial_cmp(&probs[b]).expect("finite scores"));
    let mut ranks = vec![0.0f64; probs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && probs[idx[j + 1]] == probs[idx[i]] {
            j += 1;
        }
        // Ranks are 1-based; midrank of positions i..=j.
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &y)| y)
        .map(|(&r, _)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let probs = [0.9, 0.8, 0.3, 0.1, 0.6];
        let labels = [true, false, true, false, true];
        let c = confusion(&probs, &labels, 0.5);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_confusion_is_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn perfect_classifier() {
        let probs = [0.99, 0.98, 0.01, 0.02];
        let labels = [true, true, false, false];
        assert_eq!(accuracy(&probs, &labels, 0.5), 1.0);
        assert_eq!(roc_auc(&probs, &labels), 1.0);
        assert!(log_loss(&probs, &labels) < 0.03);
    }

    #[test]
    fn inverted_classifier() {
        let probs = [0.01, 0.02, 0.99, 0.98];
        let labels = [true, true, false, false];
        assert_eq!(accuracy(&probs, &labels, 0.5), 0.0);
        assert_eq!(roc_auc(&probs, &labels), 0.0);
    }

    #[test]
    fn auc_of_random_scores_is_half() {
        // Uniform interleaving: alternate labels with increasing scores.
        let probs: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let auc = roc_auc(&probs, &labels);
        assert!((auc - 0.5).abs() < 0.02, "auc = {auc}");
    }

    #[test]
    fn auc_handles_ties_with_midranks() {
        // All scores tied: AUC must be exactly 0.5.
        let probs = [0.7; 10];
        let labels = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        assert!((roc_auc(&probs, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.1, 0.9], &[false, false]), 0.5);
    }

    #[test]
    fn log_loss_of_half_is_ln2() {
        let probs = [0.5, 0.5];
        let labels = [true, false];
        assert!((log_loss(&probs, &labels) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn log_loss_clamps_extremes() {
        // p = 0 on a true label would be +inf without clamping.
        let l = log_loss(&[0.0], &[true]);
        assert!(l.is_finite());
        assert!(l > 20.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(log_loss(&[], &[]), 0.0);
        assert_eq!(accuracy(&[], &[], 0.5), 0.0);
    }
}
