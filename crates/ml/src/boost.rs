//! Gradient-boosted decision stumps.
//!
//! Paper Section 10 ("Other ML Techniques"): "exploring other ML
//! techniques such as Gradient Boosting for our prediction model remains
//! an interesting future work." This module implements that future work:
//! gradient boosting of depth-1 regression trees (stumps) on the
//! logistic loss — the standard binary-classification GBM — so the
//! benchmark harness can compare it against the production logistic
//! model on the same features.
//!
//! Algorithm (Friedman's gradient boosting, logistic deviance):
//! start from the log-odds prior; each round fits a stump to the
//! negative gradient (residuals `y − p`), with Newton-step leaf values
//! `Σr / Σp(1−p)`, scaled by a learning rate.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// One decision stump: a single (feature, threshold) split with a value
/// per side.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Stump {
    feature: usize,
    threshold: f64,
    left_value: f64,  // x[feature] <= threshold
    right_value: f64, // x[feature] > threshold
}

impl Stump {
    fn predict(&self, row: &[f64]) -> f64 {
        if row[self.feature] <= self.threshold {
            self.left_value
        } else {
            self.right_value
        }
    }
}

/// Boosting hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoostConfig {
    /// Number of boosting rounds (stumps).
    pub rounds: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Candidate thresholds per feature (quantile grid size).
    pub candidate_splits: usize,
}

impl Default for BoostConfig {
    fn default() -> Self {
        BoostConfig {
            rounds: 150,
            learning_rate: 0.2,
            candidate_splits: 16,
        }
    }
}

/// A trained gradient-boosted stump ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoostedStumps {
    prior: f64,
    stumps: Vec<Stump>,
    learning_rate: f64,
}

impl GradientBoostedStumps {
    /// Fit on a dataset. Returns the model and the per-round training
    /// log-loss curve.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, config: &BoostConfig) -> (GradientBoostedStumps, Vec<f64>) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let n = data.len();
        let d = data.n_features();
        let ys: Vec<f64> = data
            .labels()
            .iter()
            .map(|&l| if l { 1.0 } else { 0.0 })
            .collect();
        // Prior: log-odds of the base rate (clamped away from degeneracy).
        let pos = ys.iter().sum::<f64>() / n as f64;
        let pos = pos.clamp(1e-6, 1.0 - 1e-6);
        let prior = (pos / (1.0 - pos)).ln();
        let mut scores = vec![prior; n];

        // Candidate thresholds: per-feature quantile grid, precomputed.
        let mut candidates: Vec<Vec<f64>> = Vec::with_capacity(d);
        for f in 0..d {
            let mut vals: Vec<f64> = data.rows().iter().map(|r| r[f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            let mut cands = Vec::new();
            if vals.len() > 1 {
                let k = config.candidate_splits.min(vals.len() - 1);
                for i in 1..=k {
                    let idx = i * (vals.len() - 1) / (k + 1);
                    let t = (vals[idx] + vals[idx + 1]) / 2.0;
                    if cands.last() != Some(&t) {
                        cands.push(t);
                    }
                }
            }
            candidates.push(cands);
        }

        let mut stumps = Vec::with_capacity(config.rounds);
        let mut losses = Vec::with_capacity(config.rounds);
        for _ in 0..config.rounds {
            // Gradient and Hessian of the logistic loss.
            let ps: Vec<f64> = scores
                .iter()
                .map(|&s| crate::logistic::sigmoid(s))
                .collect();
            let grad: Vec<f64> = ys.iter().zip(&ps).map(|(y, p)| y - p).collect();
            let hess: Vec<f64> = ps.iter().map(|p| (p * (1.0 - p)).max(1e-12)).collect();

            // Best stump: maximize the Newton gain over all candidate splits.
            let mut best: Option<(f64, Stump)> = None;
            for f in 0..d {
                for &t in &candidates[f] {
                    let mut gl = 0.0;
                    let mut hl = 0.0;
                    let mut gr = 0.0;
                    let mut hr = 0.0;
                    for (row, (&g, &h)) in data.rows().iter().zip(grad.iter().zip(&hess)) {
                        if row[f] <= t {
                            gl += g;
                            hl += h;
                        } else {
                            gr += g;
                            hr += h;
                        }
                    }
                    if hl < 1e-9 || hr < 1e-9 {
                        continue;
                    }
                    let gain = gl * gl / hl + gr * gr / hr;
                    if best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                        best = Some((
                            gain,
                            Stump {
                                feature: f,
                                threshold: t,
                                left_value: gl / hl,
                                right_value: gr / hr,
                            },
                        ));
                    }
                }
            }
            let Some((_, stump)) = best else { break };
            for (score, row) in scores.iter_mut().zip(data.rows()) {
                *score += config.learning_rate * stump.predict(row);
            }
            stumps.push(stump);
            // Track training loss.
            let probs: Vec<f64> = scores
                .iter()
                .map(|&s| crate::logistic::sigmoid(s))
                .collect();
            losses.push(crate::metrics::log_loss(&probs, data.labels()));
        }
        (
            GradientBoostedStumps {
                prior,
                stumps,
                learning_rate: config.learning_rate,
            },
            losses,
        )
    }

    /// `P(y = 1 | x)` for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let score = self.prior
            + self.learning_rate * self.stumps.iter().map(|s| s.predict(row)).sum::<f64>();
        crate::logistic::sigmoid(score)
    }

    /// Predicted probabilities for a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.rows().iter().map(|r| self.predict_row(r)).collect()
    }

    /// Accuracy at threshold 0.5.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        crate::metrics::accuracy(&self.predict(data), data.labels(), 0.5)
    }

    /// Number of stumps in the ensemble.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    /// True iff the ensemble is just the prior.
    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }

    /// Per-feature split counts — a crude importance measure.
    pub fn feature_usage(&self, n_features: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_features];
        for s in &self.stumps {
            counts[s.feature] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_sim::Xoshiro256StarStar;

    /// A non-monotone additive concept a linear model cannot express:
    /// label = |f0| > 0.5 (a band), plus noise features. Boosted stumps
    /// represent it with two splits on f0; a linear separator scores
    /// chance level.
    fn band_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut d = Dataset::new((0..4).map(|i| format!("f{i}")).collect());
        for _ in 0..n {
            let row: Vec<f64> = (0..4).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            let label = row[0].abs() > 0.5;
            d.push(row, label);
        }
        d
    }

    fn linear_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut d = Dataset::new((0..3).map(|i| format!("f{i}")).collect());
        for _ in 0..n {
            let row: Vec<f64> = (0..3).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            let label = 2.0 * row[0] - row[1] > 0.0;
            d.push(row, label);
        }
        d
    }

    #[test]
    fn learns_linear_concepts() {
        let train = linear_dataset(2000, 1);
        let test = linear_dataset(500, 2);
        let (model, losses) = GradientBoostedStumps::fit(&train, &BoostConfig::default());
        assert!(
            model.accuracy(&test) > 0.93,
            "acc = {}",
            model.accuracy(&test)
        );
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn learns_nonlinear_band_where_logistic_cannot() {
        let train = band_dataset(3000, 3);
        let test = band_dataset(800, 4);
        let (gbm, _) = GradientBoostedStumps::fit(&train, &BoostConfig::default());
        let (logit, _) = crate::logistic::LogisticRegression::fit(
            &train,
            &crate::logistic::TrainConfig::default(),
        );
        let gbm_acc = gbm.accuracy(&test);
        let logit_acc = logit.accuracy(&test);
        assert!(gbm_acc > 0.9, "gbm acc = {gbm_acc}");
        assert!(
            logit_acc < 0.7,
            "a linear model cannot express a band, acc = {logit_acc}"
        );
        assert!(gbm_acc > logit_acc + 0.2);
    }

    #[test]
    fn predictions_are_probabilities() {
        let train = linear_dataset(500, 5);
        let (model, _) = GradientBoostedStumps::fit(&train, &BoostConfig::default());
        for p in model.predict(&train) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn constant_labels_yield_prior_only_model() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..50 {
            d.push(vec![i as f64], true);
        }
        let (model, _) = GradientBoostedStumps::fit(&d, &BoostConfig::default());
        // All-positive labels: residuals ~0; predictions near 1.
        for p in model.predict(&d) {
            assert!(p > 0.95, "p = {p}");
        }
    }

    #[test]
    fn feature_usage_tracks_informative_features() {
        let train = band_dataset(2000, 7);
        let (model, _) = GradientBoostedStumps::fit(&train, &BoostConfig::default());
        let usage = model.feature_usage(4);
        // The band feature dominates the splits.
        assert!(usage[0] > usage[1] + usage[2] + usage[3]);
        assert!(!model.is_empty());
        assert!(model.len() <= BoostConfig::default().rounds);
    }

    #[test]
    fn deterministic_fit() {
        let train = linear_dataset(500, 9);
        let (m1, _) = GradientBoostedStumps::fit(&train, &BoostConfig::default());
        let (m2, _) = GradientBoostedStumps::fit(&train, &BoostConfig::default());
        let p1 = m1.predict(&train);
        let p2 = m2.predict(&train);
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_rejected() {
        let d = Dataset::new(vec!["x".into()]);
        GradientBoostedStumps::fit(&d, &BoostConfig::default());
    }
}
