//! # sq-ml — the prediction model substrate (paper Section 7.2)
//!
//! SubmitQueue trains two logistic-regression models in a supervised
//! manner: `predictSuccess(Cᵢ)` estimating `P_succ(Cᵢ)` and
//! `predictConflict(Cᵢ, Cⱼ)` estimating `P_conf(Cᵢ,Cⱼ)`. The paper used
//! scikit-learn offline with ~100 handpicked features, a 70/30
//! train/validation split, 97% accuracy, and recursive feature
//! elimination (RFE) to shrink the feature set.
//!
//! This crate reimplements that pipeline in Rust with no external ML
//! dependency:
//!
//! * [`dataset`] — feature matrices, labels, named columns, seeded
//!   train/test splits, and z-score standardization.
//! * [`logistic`] — binary logistic regression trained by mini-batch SGD
//!   with L2 regularization.
//! * [`metrics`] — accuracy, precision/recall/F1, ROC-AUC, log-loss,
//!   confusion matrices.
//! * [`rfe`] — recursive feature elimination over standardized weights.
//! * [`boost`] — gradient-boosted decision stumps, the Section 10
//!   "future work" model, for head-to-head comparison.
//! * [`calibration`] — reliability bins and empirical threshold search
//!   for probability-gated decisions (lean speculation skipping).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boost;
pub mod calibration;
pub mod dataset;
pub mod logistic;
pub mod metrics;
pub mod rfe;

pub use boost::{BoostConfig, GradientBoostedStumps};
pub use calibration::{Calibration, ReliabilityBin};
pub use dataset::{Dataset, Scaler, Split};
pub use logistic::{LogisticRegression, TrainConfig};
pub use metrics::{accuracy, confusion, log_loss, roc_auc, Confusion};
pub use rfe::{recursive_feature_elimination, RfeReport};
