//! Score calibration for threshold-gated decisions.
//!
//! Lean speculation skips the speculative build for a change when its
//! predicted conflict probability falls below a threshold. Choosing
//! that threshold from the raw model scores is unsafe unless the
//! scores are *calibrated*: a score of 0.05 should mean roughly 5% of
//! such pairs really conflict. This module measures calibration on a
//! labeled holdout (reliability bins, expected calibration error) and
//! picks the largest threshold whose *empirical* miss rate — the
//! fraction of below-threshold examples that are in fact positive —
//! stays within a caller-supplied budget. Everything here is
//! deterministic: same scores, same labels, same answer.

/// A reliability bin: predictions in `[lo, hi)` with their observed
/// positive rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Inclusive lower edge of the score interval.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Number of examples whose score fell in the interval.
    pub count: usize,
    /// Mean predicted score inside the interval.
    pub mean_score: f64,
    /// Observed fraction of positives inside the interval.
    pub positive_rate: f64,
}

/// Calibration measured on a labeled score set.
///
/// Holds the `(score, label)` pairs sorted by score so empirical
/// queries (`empirical_rate_below`) are exact, plus equal-width
/// reliability bins for the calibration-error summary.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// `(score, positive)` pairs sorted ascending by score.
    sorted: Vec<(f64, bool)>,
    /// Equal-width reliability bins over `[0, 1]`.
    pub bins: Vec<ReliabilityBin>,
}

impl Calibration {
    /// Measure calibration of `scores` against boolean `labels`
    /// (`true` = positive) using `n_bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or `n_bins` is zero.
    pub fn fit(scores: &[f64], labels: &[bool], n_bins: usize) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores/labels must align");
        assert!(n_bins > 0, "need at least one bin");
        let mut sorted: Vec<(f64, bool)> =
            scores.iter().copied().zip(labels.iter().copied()).collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let width = 1.0 / n_bins as f64;
        let mut bins = Vec::with_capacity(n_bins);
        for i in 0..n_bins {
            let lo = i as f64 * width;
            let hi = if i + 1 == n_bins {
                1.0 + f64::EPSILON
            } else {
                (i + 1) as f64 * width
            };
            let members: Vec<&(f64, bool)> =
                sorted.iter().filter(|(s, _)| *s >= lo && *s < hi).collect();
            let count = members.len();
            let mean_score = if count == 0 {
                0.0
            } else {
                members.iter().map(|(s, _)| s).sum::<f64>() / count as f64
            };
            let positive_rate = if count == 0 {
                0.0
            } else {
                members.iter().filter(|(_, y)| *y).count() as f64 / count as f64
            };
            bins.push(ReliabilityBin {
                lo,
                hi: hi.min(1.0),
                count,
                mean_score,
                positive_rate,
            });
        }
        Calibration { sorted, bins }
    }

    /// Number of labeled examples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no examples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Exact empirical positive rate among examples whose score is
    /// strictly below `threshold`; `None` when no example qualifies.
    pub fn empirical_rate_below(&self, threshold: f64) -> Option<f64> {
        let below = self.sorted.partition_point(|(s, _)| *s < threshold);
        if below == 0 {
            return None;
        }
        let positives = self.sorted[..below].iter().filter(|(_, y)| *y).count();
        Some(positives as f64 / below as f64)
    }

    /// Expected calibration error: count-weighted mean of
    /// |mean score − positive rate| across non-empty bins.
    pub fn expected_calibration_error(&self) -> f64 {
        let total: usize = self.bins.iter().map(|b| b.count).sum();
        if total == 0 {
            return 0.0;
        }
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| (b.mean_score - b.positive_rate).abs() * b.count as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Largest threshold from `grid` whose empirical below-threshold
    /// positive rate stays ≤ `max_rate`. Thresholds that select no
    /// examples are accepted (they can't miss anything). Returns
    /// `None` when every candidate overshoots the budget.
    pub fn largest_threshold_with_rate_below(&self, grid: &[f64], max_rate: f64) -> Option<f64> {
        let mut best = None;
        for &t in grid {
            let ok = match self.empirical_rate_below(t) {
                None => true,
                Some(rate) => rate <= max_rate,
            };
            if ok && best.is_none_or(|b: f64| t > b) {
                best = Some(t);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> (Vec<f64>, Vec<bool>) {
        // 100 examples, score i/100; label positive iff score ≥ 0.5 —
        // a perfectly calibrated-at-the-extremes, sharp classifier.
        let scores: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let labels: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
        (scores, labels)
    }

    #[test]
    fn empirical_rate_is_exact() {
        let (s, y) = ramp();
        let c = Calibration::fit(&s, &y, 10);
        assert_eq!(c.len(), 100);
        assert_eq!(c.empirical_rate_below(0.5), Some(0.0));
        // Below 0.6: 60 examples, 10 positives (0.50..0.59).
        let r = c.empirical_rate_below(0.6).unwrap();
        assert!((r - 10.0 / 60.0).abs() < 1e-12);
        assert_eq!(c.empirical_rate_below(0.0), None);
    }

    #[test]
    fn threshold_search_picks_largest_safe_cut() {
        let (s, y) = ramp();
        let c = Calibration::fit(&s, &y, 10);
        let grid: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
        // Zero-miss budget: anything ≤ 0.5 is safe, 0.6 admits misses.
        assert_eq!(c.largest_threshold_with_rate_below(&grid, 0.0), Some(0.5));
        // A 20% budget tolerates the 0.6 cut (miss rate 1/6) but not 0.7.
        assert_eq!(c.largest_threshold_with_rate_below(&grid, 0.2), Some(0.6));
    }

    #[test]
    fn no_safe_threshold_yields_none() {
        let scores = vec![0.1, 0.2, 0.3];
        let labels = vec![true, true, true];
        let c = Calibration::fit(&scores, &labels, 4);
        assert_eq!(c.largest_threshold_with_rate_below(&[0.5, 0.9], 0.1), None);
    }

    #[test]
    fn ece_zero_for_perfectly_calibrated_bins() {
        // Score 0.25 with 25% positives, score 0.75 with 75% positives.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            scores.push(0.25);
            labels.push(i % 4 == 0);
            scores.push(0.75);
            labels.push(i % 4 != 0);
        }
        let c = Calibration::fit(&scores, &labels, 2);
        assert!(c.expected_calibration_error() < 1e-12);
        let (s, y) = ramp();
        let sharp = Calibration::fit(&s, &y, 10);
        assert!(sharp.expected_calibration_error() > 0.2);
    }

    #[test]
    fn fit_is_deterministic() {
        let (s, y) = ramp();
        let a = Calibration::fit(&s, &y, 10);
        let b = Calibration::fit(&s, &y, 10);
        assert_eq!(a.bins, b.bins);
        assert_eq!(
            a.largest_threshold_with_rate_below(&[0.1, 0.5], 0.0),
            b.largest_threshold_with_rate_below(&[0.1, 0.5], 0.0)
        );
    }
}
