//! Datasets: feature matrices with named columns.

use serde::{Deserialize, Serialize};
use sq_sim::Xoshiro256StarStar;

/// A supervised binary-classification dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl Dataset {
    /// An empty dataset with the given feature schema.
    pub fn new(feature_names: Vec<String>) -> Self {
        Dataset {
            feature_names,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of features (columns).
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of examples (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one example.
    ///
    /// # Panics
    /// Panics when the row width does not match the schema — mixing
    /// schemas silently would corrupt training.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "row width {} != schema width {}",
            features.len(),
            self.feature_names.len()
        );
        self.rows.push(features);
        self.labels.push(label);
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l).count() as f64 / self.labels.len() as f64
    }

    /// Shuffle and split into train/test with `train_frac` of rows in the
    /// training set (the paper used 70/30).
    pub fn split(&self, train_frac: f64, rng: &mut Xoshiro256StarStar) -> Split {
        assert!((0.0..=1.0).contains(&train_frac));
        let mut idx: Vec<usize> = (0..self.rows.len()).collect();
        rng.shuffle(&mut idx);
        let n_train = (self.rows.len() as f64 * train_frac).round() as usize;
        let mut train = Dataset::new(self.feature_names.clone());
        let mut test = Dataset::new(self.feature_names.clone());
        for (k, &i) in idx.iter().enumerate() {
            let target = if k < n_train { &mut train } else { &mut test };
            target.push(self.rows[i].clone(), self.labels[i]);
        }
        Split { train, test }
    }

    /// A copy keeping only the given columns (for RFE).
    pub fn select_columns(&self, cols: &[usize]) -> Dataset {
        let names = cols
            .iter()
            .map(|&c| self.feature_names[c].clone())
            .collect();
        let mut out = Dataset::new(names);
        for (row, &label) in self.rows.iter().zip(&self.labels) {
            out.push(cols.iter().map(|&c| row[c]).collect(), label);
        }
        out
    }
}

/// A train/test split.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training portion.
    pub train: Dataset,
    /// Held-out portion.
    pub test: Dataset,
}

/// Z-score standardization fitted on training data.
///
/// Logistic-regression weights are only comparable across features (as
/// RFE requires) when features share a scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fit on a dataset: per-column mean and standard deviation. Columns
    /// with zero variance get std 1 (they become constant 0 and carry no
    /// signal, which is correct).
    pub fn fit(data: &Dataset) -> Scaler {
        let n = data.len().max(1) as f64;
        let d = data.n_features();
        let mut means = vec![0.0; d];
        for row in data.rows() {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for row in data.rows() {
            for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(row) {
                *v += (x - m) * (x - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Scaler { means, stds }
    }

    /// Transform one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Transform a whole dataset, returning a standardized copy.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(data.feature_names().to_vec());
        for (row, &label) in data.rows().iter().zip(data.labels()) {
            let mut r = row.clone();
            self.transform_row(&mut r);
            out.push(r, label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(17)
    }

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..100 {
            d.push(vec![i as f64, (i % 7) as f64], i % 3 == 0);
        }
        d
    }

    #[test]
    fn push_and_shape() {
        let d = toy();
        assert_eq!(d.len(), 100);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.feature_names(), &["a".to_string(), "b".to_string()]);
        assert!((d.positive_rate() - 0.34).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut d = Dataset::new(vec!["a".into()]);
        d.push(vec![1.0, 2.0], true);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy();
        let s = d.split(0.7, &mut rng());
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.test.len(), 30);
        assert_eq!(s.train.n_features(), 2);
    }

    #[test]
    fn split_is_seeded_deterministic() {
        let d = toy();
        let s1 = d.split(0.7, &mut rng());
        let s2 = d.split(0.7, &mut rng());
        assert_eq!(s1.train.rows(), s2.train.rows());
        assert_eq!(s1.test.labels(), s2.test.labels());
    }

    #[test]
    fn split_edges() {
        let d = toy();
        let all_train = d.split(1.0, &mut rng());
        assert_eq!(all_train.train.len(), 100);
        assert_eq!(all_train.test.len(), 0);
        let all_test = d.split(0.0, &mut rng());
        assert_eq!(all_test.train.len(), 0);
    }

    #[test]
    fn scaler_zero_mean_unit_variance() {
        let d = toy();
        let scaler = Scaler::fit(&d);
        let z = scaler.transform(&d);
        for col in 0..2 {
            let vals: Vec<f64> = z.rows().iter().map(|r| r[col]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-9, "col {col} mean = {mean}");
            assert!((var - 1.0).abs() < 1e-9, "col {col} var = {var}");
        }
    }

    #[test]
    fn scaler_handles_constant_columns() {
        let mut d = Dataset::new(vec!["const".into()]);
        for _ in 0..10 {
            d.push(vec![5.0], false);
        }
        let scaler = Scaler::fit(&d);
        let z = scaler.transform(&d);
        for row in z.rows() {
            assert_eq!(row[0], 0.0);
        }
    }

    #[test]
    fn select_columns_projects() {
        let d = toy();
        let s = d.select_columns(&[1]);
        assert_eq!(s.n_features(), 1);
        assert_eq!(s.feature_names(), &["b".to_string()]);
        assert_eq!(s.rows()[13][0], (13 % 7) as f64);
        assert_eq!(s.labels(), d.labels());
    }
}
