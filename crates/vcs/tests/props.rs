//! Property tests for the VCS substrate: the diff engine, patch algebra,
//! merges and canonical encodings.

use proptest::prelude::*;
use sq_vcs::diff::{apply_hunks, diff_lines, DiffOp};
use sq_vcs::merge::{merge_file, FileMerge};
use sq_vcs::{FileOp, ObjectStore, Patch, RepoPath, Tree};

/// Short line-based texts over a tiny alphabet (maximizes collisions,
/// which is what stresses diff/merge logic).
fn arb_text() -> impl proptest::strategy::Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")],
        0..12,
    )
    .prop_map(|lines| lines.join("\n"))
}

fn arb_path() -> impl proptest::strategy::Strategy<Value = RepoPath> {
    (0u8..4, 0u8..4).prop_map(|(d, f)| RepoPath::new(format!("d{d}/f{f}.rs")).unwrap())
}

fn arb_patch() -> impl proptest::strategy::Strategy<Value = Patch> {
    proptest::collection::vec(
        (arb_path(), arb_text()).prop_map(|(path, content)| FileOp::Write { path, content }),
        1..5,
    )
    .prop_map(Patch::from_ops)
}

/// A base tree containing every path the patch generator can produce.
fn full_tree(store: &mut ObjectStore) -> Tree {
    let mut t = Tree::new();
    for d in 0..4 {
        for f in 0..4 {
            let id = store.put(format!("base d{d} f{f}").into_bytes());
            t.insert(RepoPath::new(format!("d{d}/f{f}.rs")).unwrap(), id);
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn diff_reconstructs_target(old in arb_text(), new in arb_text()) {
        let hunks = diff_lines(&old, &new);
        let rebuilt = apply_hunks(&old, &new, &hunks);
        let expected = new.lines().collect::<Vec<_>>().join("\n");
        prop_assert_eq!(rebuilt, expected);
    }

    #[test]
    fn diff_of_identical_text_is_all_equal(text in arb_text()) {
        let hunks = diff_lines(&text, &text);
        prop_assert!(hunks.iter().all(|h| h.op == DiffOp::Equal));
    }

    #[test]
    fn diff_edit_count_bounded_by_line_counts(old in arb_text(), new in arb_text()) {
        let hunks = diff_lines(&old, &new);
        let deleted: usize = hunks.iter().filter(|h| h.op == DiffOp::Delete).map(|h| h.old_len).sum();
        let inserted: usize = hunks.iter().filter(|h| h.op == DiffOp::Insert).map(|h| h.new_len).sum();
        prop_assert!(deleted <= old.lines().count());
        prop_assert!(inserted <= new.lines().count());
    }

    #[test]
    fn merge_takes_sole_edit(base in arb_text(), edit in arb_text()) {
        // One side unchanged: merge must take the other side verbatim.
        match merge_file(&base, &edit, &base) {
            FileMerge::Clean(out) => prop_assert_eq!(out, edit),
            FileMerge::Conflict => prop_assert!(false, "sole edit cannot conflict"),
        }
    }

    #[test]
    fn merge_is_symmetric_in_verdict(base in arb_text(), a in arb_text(), b in arb_text()) {
        let ab = matches!(merge_file(&base, &a, &b), FileMerge::Conflict);
        let ba = matches!(merge_file(&base, &b, &a), FileMerge::Conflict);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn patch_apply_then_invert_is_identity(patch in arb_patch()) {
        let mut store = ObjectStore::new();
        let base = full_tree(&mut store);
        let inverse = patch.invert(&base, &store).unwrap();
        let applied = patch.apply(&base, &mut store).unwrap();
        let restored = inverse.apply(&applied, &mut store).unwrap();
        prop_assert_eq!(restored, base);
    }

    #[test]
    fn patch_compose_matches_sequential_apply(p1 in arb_patch(), p2 in arb_patch()) {
        let mut store = ObjectStore::new();
        let base = full_tree(&mut store);
        let seq = p2.apply(&p1.apply(&base, &mut store).unwrap(), &mut store).unwrap();
        let composed = p1.compose(&p2).apply(&base, &mut store).unwrap();
        prop_assert_eq!(seq, composed);
    }

    #[test]
    fn disjoint_patches_commute(p1 in arb_patch(), p2 in arb_patch()) {
        prop_assume!(!p1.touches_common_path(&p2));
        let mut store = ObjectStore::new();
        let base = full_tree(&mut store);
        let ab = p2.apply(&p1.apply(&base, &mut store).unwrap(), &mut store).unwrap();
        let ba = p1.apply(&p2.apply(&base, &mut store).unwrap(), &mut store).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn tree_canonical_roundtrip(patch in arb_patch()) {
        let mut store = ObjectStore::new();
        let base = full_tree(&mut store);
        let tree = patch.apply(&base, &mut store).unwrap();
        let bytes = tree.canonical_bytes();
        let parsed = Tree::from_canonical_bytes(&bytes).unwrap();
        prop_assert_eq!(parsed, tree);
    }

    #[test]
    fn sha256_streaming_matches_one_shot(data in proptest::collection::vec(any::<u8>(), 0..300), split in 0usize..300) {
        use sq_vcs::Sha256;
        let split = split.min(data.len());
        let one_shot = Sha256::digest(&data);
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), one_shot);
    }
}
