//! Commits: immutable history records.

use crate::object::{ObjectId, ObjectStore};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a commit (the content address of its serialized form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CommitId(pub ObjectId);

impl fmt::Display for CommitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Commit metadata (who, what, when).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitMeta {
    /// The author, e.g. a developer id.
    pub author: String,
    /// Human-readable description.
    pub message: String,
    /// Logical timestamp in microseconds (simulation time or wall clock).
    pub timestamp_us: u64,
}

impl CommitMeta {
    /// Convenience constructor.
    pub fn new(author: impl Into<String>, message: impl Into<String>, timestamp_us: u64) -> Self {
        CommitMeta {
            author: author.into(),
            message: message.into(),
            timestamp_us,
        }
    }
}

/// A commit: a snapshot (tree id) plus parent links and metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// This commit's id.
    pub id: CommitId,
    /// Parent commits (empty for the root, one for ordinary commits).
    pub parents: Vec<CommitId>,
    /// The snapshot this commit points at.
    pub tree: ObjectId,
    /// Metadata.
    pub meta: CommitMeta,
}

impl Commit {
    /// Compute the commit's content address and store its canonical form.
    ///
    /// The canonical form hashes the tree id, parent ids, and metadata, so
    /// two commits with identical content but different parents (or
    /// timestamps) get distinct ids — exactly like git.
    pub fn create(
        store: &mut ObjectStore,
        parents: Vec<CommitId>,
        tree: ObjectId,
        meta: CommitMeta,
    ) -> Commit {
        let mut canonical = String::new();
        canonical.push_str("tree ");
        canonical.push_str(&tree.to_hex());
        canonical.push('\n');
        for p in &parents {
            canonical.push_str("parent ");
            canonical.push_str(&p.0.to_hex());
            canonical.push('\n');
        }
        canonical.push_str(&format!(
            "author {}\ntimestamp {}\n\n{}\n",
            meta.author, meta.timestamp_us, meta.message
        ));
        let id = CommitId(store.put(canonical.into_bytes()));
        Commit {
            id,
            parents,
            tree,
            meta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_id(store: &mut ObjectStore, tag: &str) -> ObjectId {
        store.put(format!("tree:{tag}").into_bytes())
    }

    #[test]
    fn id_depends_on_tree() {
        let mut store = ObjectStore::new();
        let t1 = tree_id(&mut store, "1");
        let t2 = tree_id(&mut store, "2");
        let meta = CommitMeta::new("alice", "msg", 0);
        let c1 = Commit::create(&mut store, vec![], t1, meta.clone());
        let c2 = Commit::create(&mut store, vec![], t2, meta);
        assert_ne!(c1.id, c2.id);
    }

    #[test]
    fn id_depends_on_parents() {
        let mut store = ObjectStore::new();
        let t = tree_id(&mut store, "x");
        let meta = CommitMeta::new("alice", "msg", 0);
        let root = Commit::create(&mut store, vec![], t, meta.clone());
        let child = Commit::create(&mut store, vec![root.id], t, meta.clone());
        let orphan = Commit::create(&mut store, vec![], t, meta);
        assert_ne!(child.id, orphan.id);
        assert_eq!(orphan.id, root.id); // same content, same parents ⇒ same id
    }

    #[test]
    fn id_depends_on_metadata() {
        let mut store = ObjectStore::new();
        let t = tree_id(&mut store, "x");
        let c1 = Commit::create(&mut store, vec![], t, CommitMeta::new("alice", "m", 1));
        let c2 = Commit::create(&mut store, vec![], t, CommitMeta::new("alice", "m", 2));
        assert_ne!(c1.id, c2.id);
    }

    #[test]
    fn canonical_form_is_stored() {
        let mut store = ObjectStore::new();
        let t = tree_id(&mut store, "x");
        let c = Commit::create(&mut store, vec![], t, CommitMeta::new("bob", "hello", 7));
        let stored = store.get_text(&c.id.0).unwrap();
        assert!(stored.contains("author bob"));
        assert!(stored.contains("hello"));
        assert!(stored.contains(&t.to_hex()));
    }
}
