//! Line-oriented diffs (Myers' O(ND) algorithm).
//!
//! The three-way merge in [`crate::merge`] needs the edit script between
//! the common base and each side. We implement the classic greedy Myers
//! algorithm over lines; monorepo files in the simulation are small, so
//! the quadratic worst case is irrelevant, and the linear common-prefix/
//! suffix trim handles the overwhelmingly common "small hunk in a big
//! file" case cheaply.

/// One element of an edit script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffOp {
    /// Lines `a_range` in the old text equal lines `b_range` in the new.
    Equal,
    /// Lines present only in the old text (deletion).
    Delete,
    /// Lines present only in the new text (insertion).
    Insert,
}

/// A maximal run of one edit kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hunk {
    /// The kind of run.
    pub op: DiffOp,
    /// Start line (0-based) in the old text.
    pub old_start: usize,
    /// Number of old lines covered (0 for insertions).
    pub old_len: usize,
    /// Start line (0-based) in the new text.
    pub new_start: usize,
    /// Number of new lines covered (0 for deletions).
    pub new_len: usize,
}

impl Hunk {
    /// The half-open old-line interval this hunk occupies.
    pub fn old_range(&self) -> std::ops::Range<usize> {
        self.old_start..self.old_start + self.old_len
    }
}

/// Compute the line-level edit script from `old` to `new`.
pub fn diff_lines(old: &str, new: &str) -> Vec<Hunk> {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    diff_slices(&a, &b)
}

/// Compute the edit script between two slices of comparable items.
pub fn diff_slices<T: PartialEq>(a: &[T], b: &[T]) -> Vec<Hunk> {
    // Trim the common prefix and suffix: cheap and dominant in practice.
    let mut start = 0;
    while start < a.len() && start < b.len() && a[start] == b[start] {
        start += 1;
    }
    let mut a_end = a.len();
    let mut b_end = b.len();
    while a_end > start && b_end > start && a[a_end - 1] == b[b_end - 1] {
        a_end -= 1;
        b_end -= 1;
    }

    let mut hunks = Vec::new();
    if start > 0 {
        hunks.push(Hunk {
            op: DiffOp::Equal,
            old_start: 0,
            old_len: start,
            new_start: 0,
            new_len: start,
        });
    }
    let middle = myers(&a[start..a_end], &b[start..b_end], start, start);
    hunks.extend(middle);
    if a_end < a.len() {
        hunks.push(Hunk {
            op: DiffOp::Equal,
            old_start: a_end,
            old_len: a.len() - a_end,
            new_start: b_end,
            new_len: b.len() - b_end,
        });
    }
    coalesce(hunks)
}

/// Greedy Myers over the trimmed middle. `ao`/`bo` are global offsets.
fn myers<T: PartialEq>(a: &[T], b: &[T], ao: usize, bo: usize) -> Vec<Hunk> {
    let n = a.len();
    let m = b.len();
    if n == 0 && m == 0 {
        return vec![];
    }
    if n == 0 {
        return vec![Hunk {
            op: DiffOp::Insert,
            old_start: ao,
            old_len: 0,
            new_start: bo,
            new_len: m,
        }];
    }
    if m == 0 {
        return vec![Hunk {
            op: DiffOp::Delete,
            old_start: ao,
            old_len: n,
            new_start: bo,
            new_len: 0,
        }];
    }

    let max = n + m;
    let max_i = max as isize;
    let width = 2 * max + 1;
    let idx = |k: isize| (k + max_i) as usize;
    // v[idx(k)] = furthest x reached on diagonal k. Stored as isize so the
    // k=±d boundary reads (which may look at uninitialized neighbours) are
    // harmless: the guard conditions prevent their use.
    let mut v = vec![0isize; width];
    // Snapshot of v at the *start* of each depth d, for backtracking.
    let mut trace: Vec<Vec<isize>> = Vec::new();

    'outer: for d in 0..=(max as isize) {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let mut x = if k == -d || (k != d && v[idx(k - 1)] < v[idx(k + 1)]) {
                v[idx(k + 1)] // move down in the edit graph (insertion)
            } else {
                v[idx(k - 1)] + 1 // move right (deletion)
            };
            let mut y = x - k;
            while (x as usize) < n && (y as usize) < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx(k)] = x;
            if x as usize >= n && y as usize >= m {
                break 'outer;
            }
            k += 2;
        }
    }

    // Backtrack from (n, m) to (0, 0), emitting unit ops in reverse.
    let mut ops: Vec<(DiffOp, usize, usize)> = Vec::new(); // (op, old_pos, new_pos)
    let mut x = n as isize;
    let mut y = m as isize;
    for (d, vprev) in trace.iter().enumerate().rev() {
        if x == 0 && y == 0 {
            break;
        }
        let d = d as isize;
        let k = x - y;
        let prev_k = if k == -d || (k != d && vprev[idx(k - 1)] < vprev[idx(k + 1)]) {
            k + 1
        } else {
            k - 1
        };
        let prev_x = vprev[idx(prev_k)];
        let prev_y = prev_x - prev_k;
        // Walk back down the snake (diagonal) first.
        while x > prev_x && y > prev_y {
            x -= 1;
            y -= 1;
            ops.push((DiffOp::Equal, x as usize, y as usize));
        }
        if d > 0 {
            if prev_k == k + 1 {
                // Came from above: an insertion of b[prev_y].
                y -= 1;
                ops.push((DiffOp::Insert, x as usize, y as usize));
            } else {
                // Came from the left: a deletion of a[prev_x].
                x -= 1;
                ops.push((DiffOp::Delete, x as usize, y as usize));
            }
        }
    }
    debug_assert!(x == 0 && y == 0, "backtrack did not reach origin");

    ops.reverse();
    // Convert unit ops to hunks with global offsets.
    let mut hunks: Vec<Hunk> = Vec::new();
    for (op, ux, uy) in ops {
        let (ol, nl) = match op {
            DiffOp::Equal => (1, 1),
            DiffOp::Delete => (1, 0),
            DiffOp::Insert => (0, 1),
        };
        match hunks.last_mut() {
            Some(h) if h.op == op => {
                h.old_len += ol;
                h.new_len += nl;
            }
            _ => hunks.push(Hunk {
                op,
                old_start: ao + ux,
                old_len: ol,
                new_start: bo + uy,
                new_len: nl,
            }),
        }
    }
    hunks
}

/// Merge adjacent hunks of the same kind.
fn coalesce(hunks: Vec<Hunk>) -> Vec<Hunk> {
    let mut out: Vec<Hunk> = Vec::with_capacity(hunks.len());
    for h in hunks {
        match out.last_mut() {
            Some(prev)
                if prev.op == h.op
                    && prev.old_start + prev.old_len == h.old_start
                    && prev.new_start + prev.new_len == h.new_start =>
            {
                prev.old_len += h.old_len;
                prev.new_len += h.new_len;
            }
            _ => out.push(h),
        }
    }
    out
}

/// Apply an edit script to the old lines, reconstructing the new text.
/// Used to validate diffs in tests and property checks.
pub fn apply_hunks(old: &str, new: &str, hunks: &[Hunk]) -> String {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let mut out: Vec<&str> = Vec::with_capacity(b.len());
    for h in hunks {
        match h.op {
            DiffOp::Equal | DiffOp::Delete => {
                if h.op == DiffOp::Equal {
                    out.extend_from_slice(&a[h.old_start..h.old_start + h.old_len]);
                }
            }
            DiffOp::Insert => {
                out.extend_from_slice(&b[h.new_start..h.new_start + h.new_len]);
            }
        }
    }
    out.join("\n")
}

/// The set of old-line indices modified (deleted or adjacent to an
/// insertion) by the script — the "touched region" used for overlap
/// detection in three-way merges.
pub fn touched_old_lines(hunks: &[Hunk]) -> Vec<std::ops::Range<usize>> {
    hunks
        .iter()
        .filter(|h| h.op != DiffOp::Equal)
        .map(|h| {
            if h.op == DiffOp::Insert {
                // An insertion at position p touches the boundary [p, p).
                h.old_start..h.old_start
            } else {
                h.old_range()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_roundtrip(old: &str, new: &str) {
        let hunks = diff_lines(old, new);
        let rebuilt = apply_hunks(old, new, &hunks);
        let expected = new.lines().collect::<Vec<_>>().join("\n");
        assert_eq!(rebuilt, expected, "old={old:?} new={new:?} hunks={hunks:?}");
    }

    #[test]
    fn identical_texts() {
        let hunks = diff_lines("a\nb\nc", "a\nb\nc");
        assert_eq!(hunks.len(), 1);
        assert_eq!(hunks[0].op, DiffOp::Equal);
        check_roundtrip("a\nb\nc", "a\nb\nc");
    }

    #[test]
    fn pure_insert_and_delete() {
        check_roundtrip("", "a\nb");
        check_roundtrip("a\nb", "");
        let hunks = diff_lines("a", "a\nb");
        assert!(hunks.iter().any(|h| h.op == DiffOp::Insert));
    }

    #[test]
    fn modification_in_the_middle() {
        check_roundtrip("a\nb\nc\nd", "a\nX\nc\nd");
        check_roundtrip("a\nb\nc\nd", "a\nX\nY\nc\nd");
        check_roundtrip("a\nb\nc\nd\ne", "a\nd\ne");
    }

    #[test]
    fn everything_changes() {
        check_roundtrip("a\nb\nc", "x\ny\nz");
        check_roundtrip("one", "two");
    }

    #[test]
    fn interleaved_edits() {
        check_roundtrip("a\nb\nc\nd\ne\nf", "a\nB\nc\nD\ne\nf\ng");
        check_roundtrip("1\n2\n3\n4\n5\n6\n7\n8", "1\nX\n3\n4\nY\nZ\n7\n8\n9");
    }

    #[test]
    fn classic_myers_example() {
        // ABCABBA -> CBABAC, the example from the Myers paper.
        let a: Vec<char> = "ABCABBA".chars().collect();
        let b: Vec<char> = "CBABAC".chars().collect();
        let hunks = diff_slices(&a, &b);
        // Verify the script reconstructs b.
        let mut out = Vec::new();
        for h in &hunks {
            match h.op {
                DiffOp::Equal => out.extend_from_slice(&a[h.old_range()]),
                DiffOp::Insert => out.extend_from_slice(&b[h.new_start..h.new_start + h.new_len]),
                DiffOp::Delete => {}
            }
        }
        assert_eq!(out, b);
        // The optimal script has 5 edit units (d = 5).
        let edits: usize = hunks
            .iter()
            .filter(|h| h.op != DiffOp::Equal)
            .map(|h| h.old_len + h.new_len)
            .sum();
        assert_eq!(edits, 5);
    }

    #[test]
    fn touched_lines_reports_modified_region() {
        let hunks = diff_lines("a\nb\nc\nd", "a\nX\nc\nd");
        let touched = touched_old_lines(&hunks);
        // The modification of line 1 may surface as one replace hunk or a
        // delete plus a boundary insert; in either case everything touched
        // lies within lines [1, 2].
        assert!(
            touched.iter().any(|r| r.contains(&1)),
            "touched = {touched:?}"
        );
        for r in &touched {
            assert!(r.start >= 1 && r.end <= 2, "touched = {touched:?}");
        }
    }

    #[test]
    fn hunks_are_coalesced() {
        let hunks = diff_lines("a\nb\nc", "a\nX\nY");
        // Expect at most: Equal(a), Delete(b,c), Insert(X,Y) — no unit spam.
        assert!(hunks.len() <= 3, "hunks = {hunks:?}");
    }
}
