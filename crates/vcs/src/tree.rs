//! Immutable snapshots: path → blob mappings.
//!
//! A [`Tree`] is the state of the whole monorepo at one commit point. It
//! is an ordered map so that serialization (and therefore the tree's own
//! content address) is canonical.

use crate::object::{ObjectId, ObjectStore};
use crate::path::RepoPath;
use std::collections::BTreeMap;

/// A snapshot of the repository: every file path mapped to its blob id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tree {
    entries: BTreeMap<RepoPath, ObjectId>,
}

impl Tree {
    /// The empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the snapshot has no files.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Blob id at `path`, if present.
    pub fn get(&self, path: &RepoPath) -> Option<ObjectId> {
        self.entries.get(path).copied()
    }

    /// True iff `path` exists in the snapshot.
    pub fn contains(&self, path: &RepoPath) -> bool {
        self.entries.contains_key(path)
    }

    /// Insert or replace a file.
    pub fn insert(&mut self, path: RepoPath, blob: ObjectId) {
        self.entries.insert(path, blob);
    }

    /// Remove a file, returning its old blob id.
    pub fn remove(&mut self, path: &RepoPath) -> Option<ObjectId> {
        self.entries.remove(path)
    }

    /// Iterate entries in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&RepoPath, &ObjectId)> {
        self.entries.iter()
    }

    /// Paths under a directory prefix, in order.
    pub fn paths_under<'a>(&'a self, dir: &'a str) -> impl Iterator<Item = &'a RepoPath> + 'a {
        self.entries.keys().filter(move |p| p.starts_with_dir(dir))
    }

    /// Canonical serialized form: `hex_blob_id SP path NL` per entry, in
    /// path order. Hashing this gives the tree's content address.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * 80);
        for (path, id) in &self.entries {
            out.extend_from_slice(id.to_hex().as_bytes());
            out.push(b' ');
            out.extend_from_slice(path.as_str().as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Store the canonical form and return the tree's content address.
    pub fn store(&self, store: &mut ObjectStore) -> ObjectId {
        store.put(self.canonical_bytes())
    }

    /// Parse a snapshot back from its canonical form.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Option<Tree> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut tree = Tree::new();
        for line in text.lines() {
            let (hex, path) = line.split_once(' ')?;
            if hex.len() != 64 {
                return None;
            }
            let mut raw = [0u8; 32];
            for (i, byte) in raw.iter_mut().enumerate() {
                *byte = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).ok()?;
            }
            tree.insert(RepoPath::new(path).ok()?, ObjectId::from_raw(raw));
        }
        Some(tree)
    }

    /// Paths present in `self` or `other` whose blob differs (including
    /// additions and deletions) — the raw file-level diff between two
    /// snapshots.
    pub fn changed_paths<'a>(&'a self, other: &'a Tree) -> Vec<&'a RepoPath> {
        let mut changed = Vec::new();
        for (p, id) in &self.entries {
            match other.entries.get(p) {
                Some(oid) if oid == id => {}
                _ => changed.push(p),
            }
        }
        for p in other.entries.keys() {
            if !self.entries.contains_key(p) {
                changed.push(p);
            }
        }
        changed.sort();
        changed.dedup();
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(store: &mut ObjectStore, text: &str) -> ObjectId {
        store.put(text.as_bytes().to_vec())
    }

    fn path(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut store = ObjectStore::new();
        let mut t = Tree::new();
        let id = blob(&mut store, "hello");
        t.insert(path("a/f.rs"), id);
        assert_eq!(t.get(&path("a/f.rs")), Some(id));
        assert!(t.contains(&path("a/f.rs")));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&path("a/f.rs")), Some(id));
        assert!(t.is_empty());
    }

    #[test]
    fn canonical_bytes_roundtrip() {
        let mut store = ObjectStore::new();
        let mut t = Tree::new();
        t.insert(path("b/y.rs"), blob(&mut store, "y"));
        t.insert(path("a/x.rs"), blob(&mut store, "x"));
        let bytes = t.canonical_bytes();
        let parsed = Tree::from_canonical_bytes(&bytes).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn canonical_form_is_order_independent() {
        let mut store = ObjectStore::new();
        let x = blob(&mut store, "x");
        let y = blob(&mut store, "y");
        let mut t1 = Tree::new();
        t1.insert(path("a"), x);
        t1.insert(path("b"), y);
        let mut t2 = Tree::new();
        t2.insert(path("b"), y);
        t2.insert(path("a"), x);
        assert_eq!(t1.canonical_bytes(), t2.canonical_bytes());
    }

    #[test]
    fn store_gives_stable_address() {
        let mut store = ObjectStore::new();
        let mut t = Tree::new();
        t.insert(path("f"), blob(&mut store, "1"));
        let id1 = t.store(&mut store);
        let id2 = t.store(&mut store);
        assert_eq!(id1, id2);
        let fetched = Tree::from_canonical_bytes(store.get(&id1).unwrap()).unwrap();
        assert_eq!(fetched, t);
    }

    #[test]
    fn changed_paths_covers_add_modify_delete() {
        let mut store = ObjectStore::new();
        let mut base = Tree::new();
        base.insert(path("keep"), blob(&mut store, "k"));
        base.insert(path("modify"), blob(&mut store, "old"));
        base.insert(path("delete"), blob(&mut store, "d"));
        let mut new = base.clone();
        new.insert(path("modify"), blob(&mut store, "new"));
        new.remove(&path("delete"));
        new.insert(path("add"), blob(&mut store, "a"));
        let changed: Vec<String> = base
            .changed_paths(&new)
            .into_iter()
            .map(|p| p.as_str().to_string())
            .collect();
        assert_eq!(changed, vec!["add", "delete", "modify"]);
        // Symmetric.
        let changed_rev: Vec<String> = new
            .changed_paths(&base)
            .into_iter()
            .map(|p| p.as_str().to_string())
            .collect();
        assert_eq!(changed, changed_rev);
    }

    #[test]
    fn paths_under_filters_by_directory() {
        let mut store = ObjectStore::new();
        let b = blob(&mut store, "x");
        let mut t = Tree::new();
        for p in ["apps/a/m.rs", "apps/b/m.rs", "libs/c/m.rs"] {
            t.insert(path(p), b);
        }
        let under: Vec<&str> = t.paths_under("apps").map(|p| p.as_str()).collect();
        assert_eq!(under, vec!["apps/a/m.rs", "apps/b/m.rs"]);
        assert_eq!(t.paths_under("").count(), 3);
    }

    #[test]
    fn from_canonical_rejects_garbage() {
        assert!(Tree::from_canonical_bytes(b"nonsense").is_none());
        assert!(Tree::from_canonical_bytes(b"deadbeef a/b\n").is_none());
        assert_eq!(Tree::from_canonical_bytes(b"").unwrap(), Tree::new());
    }
}
