//! Three-way merge with textual-conflict detection.
//!
//! This is the merge a conventional code-management system performs when
//! two changes land concurrently (paper Section 1: "totally ordering code
//! patches, which a conventional code management system (e.g., git server)
//! does ... can still lead to a mainline breakage"). We reproduce it
//! faithfully — file-level fast paths, line-level diff3 for concurrent
//! edits to the same file — precisely so the evaluation can distinguish
//! *textual* conflicts (caught here) from *semantic* conflicts (only
//! caught by running build steps, which is SubmitQueue's whole point).

use crate::diff::{diff_lines, DiffOp, Hunk};
use crate::error::VcsError;
use crate::object::ObjectStore;
use crate::patch::{FileOp, Patch};
use crate::path::RepoPath;
use crate::tree::Tree;
use std::collections::BTreeSet;

/// Result of a three-way file merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileMerge {
    /// The sides merged cleanly into this content.
    Clean(String),
    /// The sides made overlapping edits.
    Conflict,
}

/// A replacement of a base-line range with new lines, derived from one
/// side's edit script.
#[derive(Debug, Clone)]
struct Replacement {
    /// Half-open base-line range being replaced (empty for pure inserts).
    base_start: usize,
    base_end: usize,
    /// Replacement lines.
    lines: Vec<String>,
}

/// Convert an edit script into replacement records against the base.
fn replacements(base: &str, side: &str) -> Vec<Replacement> {
    let side_lines: Vec<&str> = side.lines().collect();
    let hunks: Vec<Hunk> = diff_lines(base, side);
    let mut out: Vec<Replacement> = Vec::new();
    for h in hunks {
        match h.op {
            DiffOp::Equal => {}
            DiffOp::Delete => merge_into(
                &mut out,
                Replacement {
                    base_start: h.old_start,
                    base_end: h.old_start + h.old_len,
                    lines: Vec::new(),
                },
            ),
            DiffOp::Insert => merge_into(
                &mut out,
                Replacement {
                    base_start: h.old_start,
                    base_end: h.old_start,
                    lines: h.new_range_lines(&side_lines),
                },
            ),
        }
    }
    out
}

impl Hunk {
    fn new_range_lines(&self, side_lines: &[&str]) -> Vec<String> {
        side_lines[self.new_start..self.new_start + self.new_len]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }
}

/// Append a replacement, fusing it with the previous one when adjacent
/// (a Delete immediately followed by an Insert is a modification).
fn merge_into(out: &mut Vec<Replacement>, r: Replacement) {
    if let Some(last) = out.last_mut() {
        if last.base_end == r.base_start {
            last.base_end = r.base_end;
            last.lines.extend(r.lines);
            return;
        }
    }
    out.push(r);
}

/// True iff two replacement lists touch overlapping or abutting base
/// regions (abutting counts: the relative order of the two sides' inserted
/// lines would be ambiguous).
fn overlaps(a: &[Replacement], b: &[Replacement]) -> bool {
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        let (ra, rb) = (&a[i], &b[j]);
        // Treat an empty range [p, p) as occupying the boundary point p.
        let a_end = ra.base_end.max(ra.base_start);
        let b_end = rb.base_end.max(rb.base_start);
        if ra.base_start <= b_end && rb.base_start <= a_end {
            // Identical replacements on both sides are not a conflict.
            if ra.base_start == rb.base_start && ra.base_end == rb.base_end && ra.lines == rb.lines
            {
                i += 1;
                j += 1;
                continue;
            }
            return true;
        }
        if a_end < rb.base_start {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

/// Merge two sides against a common base at line granularity.
pub fn merge_file(base: &str, ours: &str, theirs: &str) -> FileMerge {
    if ours == theirs {
        return FileMerge::Clean(ours.to_string());
    }
    if ours == base {
        return FileMerge::Clean(theirs.to_string());
    }
    if theirs == base {
        return FileMerge::Clean(ours.to_string());
    }
    let ra = replacements(base, ours);
    let rb = replacements(base, theirs);
    if overlaps(&ra, &rb) {
        return FileMerge::Conflict;
    }
    // Apply both replacement lists in one walk over the base.
    let base_lines: Vec<&str> = base.lines().collect();
    let mut all: Vec<&Replacement> = ra.iter().chain(rb.iter()).collect();
    all.sort_by_key(|r| (r.base_start, r.base_end));
    // Deduplicate identical same-position replacements (both sides made
    // the same edit).
    all.dedup_by(|x, y| {
        x.base_start == y.base_start && x.base_end == y.base_end && x.lines == y.lines
    });
    let mut out: Vec<String> = Vec::with_capacity(base_lines.len());
    let mut cursor = 0usize;
    for r in all {
        out.extend(
            base_lines[cursor..r.base_start]
                .iter()
                .map(|s| s.to_string()),
        );
        out.extend(r.lines.iter().cloned());
        cursor = r.base_end.max(cursor.max(r.base_start));
    }
    out.extend(base_lines[cursor..].iter().map(|s| s.to_string()));
    FileMerge::Clean(out.join("\n"))
}

/// Merge two patches made against the same base snapshot into a single
/// combined patch, or report the conflicting paths.
///
/// File-level rules:
/// * paths touched by only one side merge trivially;
/// * write vs. delete of the same path conflicts;
/// * write vs. write goes through [`merge_file`] against the base content.
pub fn merge_patches(
    base: &Tree,
    store: &ObjectStore,
    ours: &Patch,
    theirs: &Patch,
) -> Result<Patch, VcsError> {
    let mut combined = ours.compose(&Patch::new()); // clone via compose
    let mut conflicts: BTreeSet<RepoPath> = BTreeSet::new();
    let our_paths: BTreeSet<&RepoPath> = ours.paths().collect();
    for op in theirs.ops() {
        let path = op.path();
        if !our_paths.contains(path) {
            combined.push(op.clone());
            continue;
        }
        let our_op = ours
            .ops()
            .find(|o| o.path() == path)
            .expect("path present in our_paths");
        match (our_op, op) {
            (FileOp::Delete { .. }, FileOp::Delete { .. }) => {
                // Both deleted: agreement.
            }
            (FileOp::Write { content: a, .. }, FileOp::Write { content: b, .. }) => {
                let base_content = base
                    .get(path)
                    .and_then(|id| store.get_text(&id))
                    .unwrap_or_default();
                match merge_file(&base_content, a, b) {
                    FileMerge::Clean(merged) => combined.push(FileOp::Write {
                        path: path.clone(),
                        content: merged,
                    }),
                    FileMerge::Conflict => {
                        conflicts.insert(path.clone());
                    }
                }
            }
            _ => {
                // Write vs delete.
                conflicts.insert(path.clone());
            }
        }
    }
    if conflicts.is_empty() {
        Ok(combined)
    } else {
        Err(VcsError::MergeConflict {
            paths: conflicts.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        assert_eq!(merge_file("b", "b", "b"), FileMerge::Clean("b".into()));
        assert_eq!(merge_file("b", "x", "b"), FileMerge::Clean("x".into()));
        assert_eq!(merge_file("b", "b", "y"), FileMerge::Clean("y".into()));
        assert_eq!(
            merge_file("b", "same", "same"),
            FileMerge::Clean("same".into())
        );
    }

    #[test]
    fn disjoint_edits_merge() {
        let base = "a\nb\nc\nd\ne\nf\ng\nh";
        let ours = "A\nb\nc\nd\ne\nf\ng\nh"; // edit line 0
        let theirs = "a\nb\nc\nd\ne\nf\ng\nH"; // edit line 7
        assert_eq!(
            merge_file(base, ours, theirs),
            FileMerge::Clean("A\nb\nc\nd\ne\nf\ng\nH".into())
        );
    }

    #[test]
    fn overlapping_edits_conflict() {
        let base = "a\nb\nc";
        let ours = "a\nX\nc";
        let theirs = "a\nY\nc";
        assert_eq!(merge_file(base, ours, theirs), FileMerge::Conflict);
    }

    #[test]
    fn adjacent_inserts_at_same_point_conflict() {
        let base = "a\nb";
        let ours = "a\nX\nb";
        let theirs = "a\nY\nb";
        assert_eq!(merge_file(base, ours, theirs), FileMerge::Conflict);
    }

    #[test]
    fn identical_edits_agree() {
        let base = "a\nb\nc";
        let both = "a\nZ\nc";
        assert_eq!(merge_file(base, both, both), FileMerge::Clean(both.into()));
    }

    #[test]
    fn insert_far_from_delete_merges() {
        let base = "1\n2\n3\n4\n5\n6\n7\n8\n9\n10";
        let ours = "0\n1\n2\n3\n4\n5\n6\n7\n8\n9\n10"; // insert at top
        let theirs = "1\n2\n3\n4\n5\n6\n7\n8\n9"; // delete line 10
        assert_eq!(
            merge_file(base, ours, theirs),
            FileMerge::Clean("0\n1\n2\n3\n4\n5\n6\n7\n8\n9".into())
        );
    }

    fn path(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    fn setup() -> (Tree, ObjectStore) {
        let mut store = ObjectStore::new();
        let mut t = Tree::new();
        for (p, c) in [("f1", "a\nb\nc\nd\ne\nf"), ("f2", "x\ny\nz")] {
            let id = store.put(c.as_bytes().to_vec());
            t.insert(path(p), id);
        }
        (t, store)
    }

    #[test]
    fn patches_on_distinct_files_merge() {
        let (base, store) = setup();
        let ours = Patch::write(path("f1"), "changed1");
        let theirs = Patch::write(path("f2"), "changed2");
        let merged = merge_patches(&base, &store, &ours, &theirs).unwrap();
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn patches_with_disjoint_line_edits_on_same_file_merge() {
        let (base, store) = setup();
        let ours = Patch::write(path("f1"), "A\nb\nc\nd\ne\nf");
        let theirs = Patch::write(path("f1"), "a\nb\nc\nd\ne\nF");
        let merged = merge_patches(&base, &store, &ours, &theirs).unwrap();
        let op = merged.ops().next().unwrap();
        match op {
            FileOp::Write { content, .. } => assert_eq!(content, "A\nb\nc\nd\ne\nF"),
            _ => panic!("expected write"),
        }
    }

    #[test]
    fn write_vs_delete_conflicts() {
        let (base, store) = setup();
        let ours = Patch::write(path("f1"), "modified");
        let theirs = Patch::delete(path("f1"));
        let err = merge_patches(&base, &store, &ours, &theirs).unwrap_err();
        assert!(matches!(err, VcsError::MergeConflict { .. }));
    }

    #[test]
    fn both_delete_agrees() {
        let (base, store) = setup();
        let ours = Patch::delete(path("f1"));
        let theirs = Patch::delete(path("f1"));
        let merged = merge_patches(&base, &store, &ours, &theirs).unwrap();
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn overlapping_same_file_edits_report_the_path() {
        let (base, store) = setup();
        let ours = Patch::write(path("f1"), "a\nOURS\nc\nd\ne\nf");
        let theirs = Patch::write(path("f1"), "a\nTHEIRS\nc\nd\ne\nf");
        match merge_patches(&base, &store, &ours, &theirs) {
            Err(VcsError::MergeConflict { paths }) => {
                assert_eq!(paths, vec![path("f1")]);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }
}
