//! Developer code patches.
//!
//! A patch is the code portion of a paper "change": a set of file writes
//! and deletes against some snapshot. Patches compose (`⊕` in the paper:
//! `H ⊕ C₁ ⊕ C₂`), apply to trees, and can be inverted against the tree
//! they were applied to (rollback — the expensive manual operation the
//! paper's introduction describes, which SubmitQueue makes unnecessary).

use crate::error::VcsError;
use crate::object::ObjectStore;
use crate::path::RepoPath;
use crate::tree::Tree;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One file-level operation in a patch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileOp {
    /// Create or replace the file at `path` with `content`.
    Write {
        /// Target path.
        path: RepoPath,
        /// New full content.
        content: String,
    },
    /// Remove the file at `path`.
    Delete {
        /// Target path.
        path: RepoPath,
    },
}

impl FileOp {
    /// The path this operation touches.
    pub fn path(&self) -> &RepoPath {
        match self {
            FileOp::Write { path, .. } | FileOp::Delete { path } => path,
        }
    }
}

/// A code patch: an ordered set of file operations, at most one per path
/// (later operations on the same path overwrite earlier ones).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Patch {
    ops: BTreeMap<RepoPath, FileOp>,
}

impl Patch {
    /// The empty patch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a list of operations; later ops win per path.
    pub fn from_ops(ops: impl IntoIterator<Item = FileOp>) -> Self {
        let mut p = Patch::new();
        for op in ops {
            p.push(op);
        }
        p
    }

    /// Convenience: a patch that writes one file.
    pub fn write(path: RepoPath, content: impl Into<String>) -> Self {
        Patch::from_ops([FileOp::Write {
            path,
            content: content.into(),
        }])
    }

    /// Convenience: a patch that deletes one file.
    pub fn delete(path: RepoPath) -> Self {
        Patch::from_ops([FileOp::Delete { path }])
    }

    /// Add an operation, replacing any previous op on the same path.
    pub fn push(&mut self, op: FileOp) {
        self.ops.insert(op.path().clone(), op);
    }

    /// Number of touched paths.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the patch has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Paths touched by this patch, in order.
    pub fn paths(&self) -> impl Iterator<Item = &RepoPath> {
        self.ops.keys()
    }

    /// Operations in path order.
    pub fn ops(&self) -> impl Iterator<Item = &FileOp> {
        self.ops.values()
    }

    /// True iff this patch and `other` touch any common path.
    pub fn touches_common_path(&self, other: &Patch) -> bool {
        // Iterate over the smaller set.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.ops.keys().any(|p| large.ops.contains_key(p))
    }

    /// Compose: the patch equivalent to applying `self` then `later`
    /// (paper `C₁ ⊕ C₂`). Later operations win on common paths.
    pub fn compose(&self, later: &Patch) -> Patch {
        let mut out = self.clone();
        for op in later.ops.values() {
            out.push(op.clone());
        }
        out
    }

    /// Apply to a tree, producing the new snapshot. Deleting a missing
    /// path is an error (the patch was made against a different base).
    pub fn apply(&self, base: &Tree, store: &mut ObjectStore) -> Result<Tree, VcsError> {
        let mut tree = base.clone();
        for op in self.ops.values() {
            match op {
                FileOp::Write { path, content } => {
                    let id = store.put(content.clone().into_bytes());
                    tree.insert(path.clone(), id);
                }
                FileOp::Delete { path } => {
                    if tree.remove(path).is_none() {
                        return Err(VcsError::MissingPath(path.clone()));
                    }
                }
            }
        }
        Ok(tree)
    }

    /// The inverse patch relative to `base`: applying `self` then the
    /// result of `invert(base)` restores `base` exactly on the touched
    /// paths.
    pub fn invert(&self, base: &Tree, store: &ObjectStore) -> Result<Patch, VcsError> {
        let mut inv = Patch::new();
        for op in self.ops.values() {
            let path = op.path();
            match base.get(path) {
                Some(old_id) => {
                    let content = store
                        .get_text(&old_id)
                        .ok_or_else(|| VcsError::MissingObject(old_id.to_hex()))?;
                    inv.push(FileOp::Write {
                        path: path.clone(),
                        content,
                    });
                }
                None => {
                    // The op created this path; the inverse deletes it.
                    if matches!(op, FileOp::Delete { .. }) {
                        return Err(VcsError::MissingPath(path.clone()));
                    }
                    inv.push(FileOp::Delete { path: path.clone() });
                }
            }
        }
        Ok(inv)
    }

    /// True iff applying to `base` would change nothing (all writes are
    /// identical content and there are no deletes of existing files).
    pub fn is_noop_on(&self, base: &Tree, store: &ObjectStore) -> bool {
        self.ops.values().all(|op| match op {
            FileOp::Write { path, content } => base
                .get(path)
                .and_then(|id| store.get_text(&id))
                .is_some_and(|old| old == *content),
            FileOp::Delete { path } => !base.contains(path),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    fn base_tree(store: &mut ObjectStore) -> Tree {
        let mut t = Tree::new();
        for (p, c) in [("a.rs", "alpha"), ("b.rs", "beta"), ("dir/c.rs", "gamma")] {
            let id = store.put(c.as_bytes().to_vec());
            t.insert(path(p), id);
        }
        t
    }

    #[test]
    fn apply_write_and_delete() {
        let mut store = ObjectStore::new();
        let base = base_tree(&mut store);
        let patch = Patch::from_ops([
            FileOp::Write {
                path: path("a.rs"),
                content: "alpha2".into(),
            },
            FileOp::Delete { path: path("b.rs") },
            FileOp::Write {
                path: path("new.rs"),
                content: "nu".into(),
            },
        ]);
        let out = patch.apply(&base, &mut store).unwrap();
        assert_eq!(
            store.get_text(&out.get(&path("a.rs")).unwrap()).unwrap(),
            "alpha2"
        );
        assert!(!out.contains(&path("b.rs")));
        assert!(out.contains(&path("new.rs")));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn delete_missing_path_errors() {
        let mut store = ObjectStore::new();
        let base = base_tree(&mut store);
        let patch = Patch::delete(path("nope.rs"));
        assert!(matches!(
            patch.apply(&base, &mut store),
            Err(VcsError::MissingPath(_))
        ));
    }

    #[test]
    fn later_op_wins_per_path() {
        let patch = Patch::from_ops([
            FileOp::Write {
                path: path("x"),
                content: "first".into(),
            },
            FileOp::Write {
                path: path("x"),
                content: "second".into(),
            },
        ]);
        assert_eq!(patch.len(), 1);
        let mut store = ObjectStore::new();
        let out = patch.apply(&Tree::new(), &mut store).unwrap();
        assert_eq!(
            store.get_text(&out.get(&path("x")).unwrap()).unwrap(),
            "second"
        );
    }

    #[test]
    fn compose_is_sequential_application() {
        let mut store = ObjectStore::new();
        let base = base_tree(&mut store);
        let c1 = Patch::write(path("a.rs"), "from-c1");
        let c2 = Patch::from_ops([
            FileOp::Write {
                path: path("a.rs"),
                content: "from-c2".into(),
            },
            FileOp::Delete { path: path("b.rs") },
        ]);
        let composed = c1.compose(&c2);
        let seq = c2
            .apply(&c1.apply(&base, &mut store).unwrap(), &mut store)
            .unwrap();
        let direct = composed.apply(&base, &mut store).unwrap();
        assert_eq!(seq, direct);
    }

    #[test]
    fn invert_restores_touched_paths() {
        let mut store = ObjectStore::new();
        let base = base_tree(&mut store);
        let patch = Patch::from_ops([
            FileOp::Write {
                path: path("a.rs"),
                content: "changed".into(),
            },
            FileOp::Delete { path: path("b.rs") },
            FileOp::Write {
                path: path("created.rs"),
                content: "fresh".into(),
            },
        ]);
        let inv = patch.invert(&base, &store).unwrap();
        let applied = patch.apply(&base, &mut store).unwrap();
        let restored = inv.apply(&applied, &mut store).unwrap();
        assert_eq!(restored, base);
    }

    #[test]
    fn touches_common_path_detection() {
        let p1 = Patch::write(path("a"), "1");
        let p2 = Patch::write(path("b"), "2");
        let p3 = Patch::from_ops([FileOp::Delete { path: path("a") }]);
        assert!(!p1.touches_common_path(&p2));
        assert!(p1.touches_common_path(&p3));
        assert!(p3.touches_common_path(&p1));
    }

    #[test]
    fn noop_detection() {
        let mut store = ObjectStore::new();
        let base = base_tree(&mut store);
        let same = Patch::write(path("a.rs"), "alpha");
        let diff = Patch::write(path("a.rs"), "other");
        assert!(same.is_noop_on(&base, &store));
        assert!(!diff.is_noop_on(&base, &store));
        assert!(Patch::new().is_noop_on(&base, &store));
    }
}
