//! # sq-vcs — an in-memory content-addressed monorepo
//!
//! SubmitQueue (EuroSys '19) sits in front of a giant monolithic
//! repository: changes are code patches against the mainline HEAD, commits
//! advance the mainline, and the conflict analyzer reads file contents at
//! arbitrary commit points to compute target hashes (paper Algorithm 1).
//! This crate is that substrate: a git-like object model small enough to
//! reason about but faithful where the paper depends on it.
//!
//! * [`hash`] — SHA-256, implemented from scratch, used for content
//!   addressing (blobs, trees, commits all get stable ids).
//! * [`object`] — the content-addressed object store.
//! * [`path`] — normalized repository paths.
//! * [`tree`] — immutable snapshots mapping paths to blob ids.
//! * [`patch`] — a developer's code patch: writes and deletes, plus patch
//!   composition (the paper's `C₁ ⊕ C₂`).
//! * [`diff`] — Myers line diff between blobs.
//! * [`merge`] — three-way file and tree merge with textual-conflict
//!   detection (what a plain git server would catch; the paper's point is
//!   that this is *insufficient* — semantic conflicts need build steps).
//! * [`commit`], [`repo`] — commit DAG, branches, mainline history, and
//!   the always-green audit trail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod diff;
pub mod error;
pub mod hash;
pub mod merge;
pub mod object;
pub mod patch;
pub mod path;
pub mod repo;
pub mod tree;

pub use commit::{Commit, CommitId, CommitMeta};
pub use error::VcsError;
pub use hash::Sha256;
pub use object::{ObjectId, ObjectStore};
pub use patch::{FileOp, Patch};
pub use path::RepoPath;
pub use repo::Repository;
pub use tree::Tree;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, VcsError>;
