//! The repository: object store + commit DAG + branches.
//!
//! The mainline branch (`main`) is the paper's *master*: SubmitQueue's
//! core service is the only writer, and commits advance HEAD one change
//! at a time. Feature branches model the developer life cycle of Figure 3
//! (branch from HEAD, iterate, submit).

use crate::commit::{Commit, CommitId, CommitMeta};
use crate::error::VcsError;
use crate::object::ObjectStore;
use crate::patch::Patch;
use crate::tree::Tree;
use crate::Result;
use std::collections::HashMap;

/// Name of the mainline branch.
pub const MAINLINE: &str = "main";

/// An in-memory repository.
#[derive(Debug, Clone)]
pub struct Repository {
    store: ObjectStore,
    commits: HashMap<CommitId, Commit>,
    branches: HashMap<String, CommitId>,
    root: CommitId,
}

impl Repository {
    /// Initialize a repository whose root commit holds `initial` files
    /// (path, content pairs).
    ///
    /// ```
    /// use sq_vcs::{Patch, RepoPath, Repository, CommitMeta};
    ///
    /// let mut repo = Repository::init([("src/lib.rs", "fn f() {}")]).unwrap();
    /// let id = repo
    ///     .commit_patch(
    ///         sq_vcs::repo::MAINLINE,
    ///         &Patch::write(RepoPath::new("src/lib.rs").unwrap(), "fn f() { /* v2 */ }"),
    ///         CommitMeta::new("alice", "update f", 1),
    ///     )
    ///     .unwrap();
    /// assert_eq!(repo.head(), id);
    /// assert_eq!(
    ///     repo.read_file(id, &RepoPath::new("src/lib.rs").unwrap()).unwrap(),
    ///     "fn f() { /* v2 */ }"
    /// );
    /// ```
    pub fn init<'a>(initial: impl IntoIterator<Item = (&'a str, &'a str)>) -> Result<Repository> {
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        for (p, content) in initial {
            let path = crate::path::RepoPath::new(p)?;
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(path, id);
        }
        let tree_id = tree.store(&mut store);
        let root = Commit::create(
            &mut store,
            vec![],
            tree_id,
            CommitMeta::new("system", "repository root", 0),
        );
        let root_id = root.id;
        let mut commits = HashMap::new();
        commits.insert(root_id, root);
        let mut branches = HashMap::new();
        branches.insert(MAINLINE.to_string(), root_id);
        Ok(Repository {
            store,
            commits,
            branches,
            root: root_id,
        })
    }

    /// The object store (read access).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Mutable object store access (for staging blobs).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// The root commit id.
    pub fn root(&self) -> CommitId {
        self.root
    }

    /// The mainline HEAD.
    pub fn head(&self) -> CommitId {
        self.branches[MAINLINE]
    }

    /// Tip of a named branch.
    pub fn branch_tip(&self, name: &str) -> Result<CommitId> {
        self.branches
            .get(name)
            .copied()
            .ok_or_else(|| VcsError::UnknownBranch(name.to_string()))
    }

    /// Names of all branches, sorted.
    pub fn branch_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.branches.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Look up a commit.
    pub fn commit(&self, id: CommitId) -> Result<&Commit> {
        self.commits.get(&id).ok_or(VcsError::UnknownCommit(id))
    }

    /// Materialize the snapshot at a commit.
    pub fn tree_at(&self, id: CommitId) -> Result<Tree> {
        let commit = self.commit(id)?;
        let bytes = self
            .store
            .get(&commit.tree)
            .ok_or_else(|| VcsError::MissingObject(commit.tree.to_hex()))?;
        Tree::from_canonical_bytes(bytes)
            .ok_or_else(|| VcsError::MissingObject(commit.tree.to_hex()))
    }

    /// The snapshot at the mainline HEAD.
    pub fn head_tree(&self) -> Result<Tree> {
        self.tree_at(self.head())
    }

    /// Read a file's text at a commit.
    pub fn read_file(&self, at: CommitId, path: &crate::path::RepoPath) -> Result<String> {
        let tree = self.tree_at(at)?;
        let blob = tree
            .get(path)
            .ok_or_else(|| VcsError::MissingPath(path.clone()))?;
        self.store
            .get_text(&blob)
            .ok_or_else(|| VcsError::MissingObject(blob.to_hex()))
    }

    /// Create a branch at `from` (defaults to mainline HEAD when `None`).
    pub fn create_branch(&mut self, name: &str, from: Option<CommitId>) -> Result<CommitId> {
        if self.branches.contains_key(name) {
            return Err(VcsError::BranchExists(name.to_string()));
        }
        let base = from.unwrap_or_else(|| self.head());
        self.commit(base)?; // validate
        self.branches.insert(name.to_string(), base);
        Ok(base)
    }

    /// Delete a branch (the mainline cannot be deleted).
    pub fn delete_branch(&mut self, name: &str) -> Result<()> {
        if name == MAINLINE {
            return Err(VcsError::InvalidPath(MAINLINE.to_string()));
        }
        self.branches
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| VcsError::UnknownBranch(name.to_string()))
    }

    /// Apply `patch` on top of branch `branch` and advance it.
    ///
    /// Returns the new commit id. Refuses empty (no-op) commits, matching
    /// the paper's model where every change must actually modify targets.
    pub fn commit_patch(
        &mut self,
        branch: &str,
        patch: &Patch,
        meta: CommitMeta,
    ) -> Result<CommitId> {
        let tip = self.branch_tip(branch)?;
        let base_tree = self.tree_at(tip)?;
        if patch.is_empty() || patch.is_noop_on(&base_tree, &self.store) {
            return Err(VcsError::EmptyCommit);
        }
        let new_tree = patch.apply(&base_tree, &mut self.store)?;
        let tree_id = new_tree.store(&mut self.store);
        let commit = Commit::create(&mut self.store, vec![tip], tree_id, meta);
        let id = commit.id;
        self.commits.insert(id, commit);
        self.branches.insert(branch.to_string(), id);
        Ok(id)
    }

    /// The snapshot that would result from applying `patch` at `base`,
    /// without committing anything (used for speculative builds:
    /// `H ⊕ C₁ ⊕ …` in the paper).
    pub fn preview(&mut self, base: CommitId, patch: &Patch) -> Result<Tree> {
        let base_tree = self.tree_at(base)?;
        patch.apply(&base_tree, &mut self.store)
    }

    /// Linear history from `from` back to the root (inclusive), newest
    /// first. Follows first parents.
    pub fn log(&self, from: CommitId) -> Result<Vec<CommitId>> {
        let mut out = Vec::new();
        let mut cur = Some(from);
        while let Some(id) = cur {
            let c = self.commit(id)?;
            out.push(id);
            cur = c.parents.first().copied();
        }
        Ok(out)
    }

    /// True iff `ancestor` is reachable from `descendant` via first-parent
    /// links.
    pub fn is_ancestor(&self, ancestor: CommitId, descendant: CommitId) -> Result<bool> {
        let mut cur = Some(descendant);
        while let Some(id) = cur {
            if id == ancestor {
                return Ok(true);
            }
            cur = self.commit(id)?.parents.first().copied();
        }
        Ok(false)
    }

    /// Revert commit `target` on top of branch `branch`: compute the
    /// inverse of the patch `target` introduced and commit it.
    ///
    /// This is the manual rollback operation the paper's introduction
    /// describes as "tedious and error-prone" — provided here both for
    /// fidelity and so tests can exercise red-master recovery in the
    /// trunk-based baseline.
    pub fn revert(&mut self, branch: &str, target: CommitId, meta: CommitMeta) -> Result<CommitId> {
        let target_commit = self.commit(target)?.clone();
        let parent = *target_commit
            .parents
            .first()
            .ok_or(VcsError::UnknownCommit(target))?;
        let parent_tree = self.tree_at(parent)?;
        let target_tree = self.tree_at(target)?;
        // Reconstruct the patch target introduced, then invert it against
        // the *current* branch tip state.
        let mut inverse = Patch::new();
        for path in parent_tree.changed_paths(&target_tree) {
            match parent_tree.get(path) {
                Some(old_blob) => {
                    let content = self
                        .store
                        .get_text(&old_blob)
                        .ok_or_else(|| VcsError::MissingObject(old_blob.to_hex()))?;
                    inverse.push(crate::patch::FileOp::Write {
                        path: path.clone(),
                        content,
                    });
                }
                None => inverse.push(crate::patch::FileOp::Delete { path: path.clone() }),
            }
        }
        self.commit_patch(branch, &inverse, meta)
    }

    /// Number of commits known to the repository.
    pub fn commit_count(&self) -> usize {
        self.commits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::RepoPath;

    fn path(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    fn meta(msg: &str) -> CommitMeta {
        CommitMeta::new("dev", msg, 0)
    }

    fn repo() -> Repository {
        Repository::init([("src/lib.rs", "fn lib() {}"), ("README.md", "# repo")]).unwrap()
    }

    #[test]
    fn init_creates_mainline_with_root() {
        let r = repo();
        assert_eq!(r.head(), r.root());
        assert_eq!(r.branch_names(), vec![MAINLINE]);
        let tree = r.head_tree().unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(r.read_file(r.head(), &path("README.md")).unwrap(), "# repo");
    }

    #[test]
    fn commit_advances_head() {
        let mut r = repo();
        let patch = Patch::write(path("src/lib.rs"), "fn lib() { /* v2 */ }");
        let id = r.commit_patch(MAINLINE, &patch, meta("v2")).unwrap();
        assert_eq!(r.head(), id);
        assert_eq!(
            r.read_file(id, &path("src/lib.rs")).unwrap(),
            "fn lib() { /* v2 */ }"
        );
        // Old commit still readable (history is immutable).
        assert_eq!(
            r.read_file(r.root(), &path("src/lib.rs")).unwrap(),
            "fn lib() {}"
        );
    }

    #[test]
    fn empty_commit_rejected() {
        let mut r = repo();
        assert!(matches!(
            r.commit_patch(MAINLINE, &Patch::new(), meta("noop")),
            Err(VcsError::EmptyCommit)
        ));
        // A write of identical content is also a no-op.
        let same = Patch::write(path("README.md"), "# repo");
        assert!(matches!(
            r.commit_patch(MAINLINE, &same, meta("noop")),
            Err(VcsError::EmptyCommit)
        ));
    }

    #[test]
    fn branches_isolate_work() {
        let mut r = repo();
        r.create_branch("feature", None).unwrap();
        let patch = Patch::write(path("src/feat.rs"), "fn feat() {}");
        r.commit_patch("feature", &patch, meta("feat")).unwrap();
        // Mainline unaffected.
        assert!(!r.head_tree().unwrap().contains(&path("src/feat.rs")));
        let tip = r.branch_tip("feature").unwrap();
        assert!(r.tree_at(tip).unwrap().contains(&path("src/feat.rs")));
    }

    #[test]
    fn duplicate_branch_rejected() {
        let mut r = repo();
        r.create_branch("x", None).unwrap();
        assert!(matches!(
            r.create_branch("x", None),
            Err(VcsError::BranchExists(_))
        ));
    }

    #[test]
    fn delete_branch_guards_mainline() {
        let mut r = repo();
        r.create_branch("x", None).unwrap();
        r.delete_branch("x").unwrap();
        assert!(r.delete_branch("x").is_err());
        assert!(r.delete_branch(MAINLINE).is_err());
    }

    #[test]
    fn log_walks_history_newest_first() {
        let mut r = repo();
        let c1 = r
            .commit_patch(MAINLINE, &Patch::write(path("a"), "1"), meta("c1"))
            .unwrap();
        let c2 = r
            .commit_patch(MAINLINE, &Patch::write(path("a"), "2"), meta("c2"))
            .unwrap();
        let log = r.log(r.head()).unwrap();
        assert_eq!(log, vec![c2, c1, r.root()]);
    }

    #[test]
    fn ancestry() {
        let mut r = repo();
        let c1 = r
            .commit_patch(MAINLINE, &Patch::write(path("a"), "1"), meta("c1"))
            .unwrap();
        r.create_branch("side", Some(r.root())).unwrap();
        let s1 = r
            .commit_patch("side", &Patch::write(path("b"), "1"), meta("s1"))
            .unwrap();
        assert!(r.is_ancestor(r.root(), c1).unwrap());
        assert!(r.is_ancestor(r.root(), s1).unwrap());
        assert!(!r.is_ancestor(c1, s1).unwrap());
        assert!(!r.is_ancestor(s1, c1).unwrap());
    }

    #[test]
    fn preview_does_not_commit() {
        let mut r = repo();
        let head = r.head();
        let t = r
            .preview(head, &Patch::write(path("ghost.rs"), "spooky"))
            .unwrap();
        assert!(t.contains(&path("ghost.rs")));
        assert_eq!(r.head(), head);
        assert!(!r.head_tree().unwrap().contains(&path("ghost.rs")));
    }

    #[test]
    fn revert_restores_previous_content() {
        let mut r = repo();
        let bad = r
            .commit_patch(
                MAINLINE,
                &Patch::from_ops([
                    crate::patch::FileOp::Write {
                        path: path("src/lib.rs"),
                        content: "broken!".into(),
                    },
                    crate::patch::FileOp::Write {
                        path: path("new.rs"),
                        content: "added".into(),
                    },
                ]),
                meta("bad change"),
            )
            .unwrap();
        let revert_id = r.revert(MAINLINE, bad, meta("revert bad")).unwrap();
        assert_eq!(r.head(), revert_id);
        assert_eq!(
            r.read_file(revert_id, &path("src/lib.rs")).unwrap(),
            "fn lib() {}"
        );
        assert!(!r.head_tree().unwrap().contains(&path("new.rs")));
        // The bad commit is still in history (revert, not rewrite).
        assert!(r.is_ancestor(bad, revert_id).unwrap());
    }

    #[test]
    fn commit_ids_are_unique_along_history() {
        let mut r = repo();
        let mut seen = std::collections::HashSet::new();
        seen.insert(r.head());
        for i in 0..20 {
            let id = r
                .commit_patch(
                    MAINLINE,
                    &Patch::write(path("counter"), format!("{i}")),
                    CommitMeta::new("dev", "tick", i),
                )
                .unwrap();
            assert!(seen.insert(id), "duplicate commit id at step {i}");
        }
        assert_eq!(r.commit_count(), 21);
    }
}
