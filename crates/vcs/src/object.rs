//! The content-addressed object store.
//!
//! Blobs (file contents), serialized trees and commits are all stored
//! under the SHA-256 of their bytes. Storing is idempotent; identical
//! content is deduplicated, which matters because the benchmark workloads
//! create tens of thousands of snapshots that share almost all files.

use crate::hash::{to_hex, Sha256};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A 32-byte content address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId([u8; 32]);

impl ObjectId {
    /// The address of the given bytes.
    pub fn for_bytes(data: &[u8]) -> Self {
        ObjectId(Sha256::digest(data))
    }

    /// Construct from raw digest bytes (used when parsing canonical trees
    /// and deserializing traces).
    pub fn from_raw(raw: [u8; 32]) -> Self {
        ObjectId(raw)
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Full lowercase hex form.
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }

    /// Abbreviated (12 hex chars) form for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_string()
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.short())
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.short())
    }
}

/// An in-memory content-addressed store.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    objects: HashMap<ObjectId, Bytes>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert content, returning its address. Idempotent.
    pub fn put(&mut self, data: impl Into<Bytes>) -> ObjectId {
        let bytes: Bytes = data.into();
        let id = ObjectId::for_bytes(&bytes);
        self.objects.entry(id).or_insert(bytes);
        id
    }

    /// Fetch content by address.
    pub fn get(&self, id: &ObjectId) -> Option<&Bytes> {
        self.objects.get(id)
    }

    /// Fetch content as UTF-8 text (lossy for non-UTF-8 blobs).
    pub fn get_text(&self, id: &ObjectId) -> Option<String> {
        self.objects
            .get(id)
            .map(|b| String::from_utf8_lossy(b).into_owned())
    }

    /// True iff the store holds this address.
    pub fn contains(&self, id: &ObjectId) -> bool {
        self.objects.contains_key(id)
    }

    /// Number of distinct objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total stored bytes (after deduplication).
    pub fn total_bytes(&self) -> usize {
        self.objects.values().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut store = ObjectStore::new();
        let id = store.put(&b"fn main() {}"[..]);
        assert_eq!(store.get(&id).unwrap().as_ref(), b"fn main() {}");
        assert_eq!(store.get_text(&id).unwrap(), "fn main() {}");
    }

    #[test]
    fn identical_content_deduplicates() {
        let mut store = ObjectStore::new();
        let a = store.put(&b"same"[..]);
        let b = store.put(&b"same"[..]);
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 4);
    }

    #[test]
    fn distinct_content_distinct_ids() {
        let mut store = ObjectStore::new();
        let a = store.put(&b"alpha"[..]);
        let b = store.put(&b"beta"[..]);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn missing_object_is_none() {
        let store = ObjectStore::new();
        let phantom = ObjectId::for_bytes(b"never stored");
        assert!(store.get(&phantom).is_none());
        assert!(!store.contains(&phantom));
    }

    #[test]
    fn id_is_stable_across_stores() {
        let mut s1 = ObjectStore::new();
        let mut s2 = ObjectStore::new();
        assert_eq!(s1.put(&b"content"[..]), s2.put(&b"content"[..]));
    }

    #[test]
    fn hex_forms() {
        let id = ObjectId::for_bytes(b"");
        assert_eq!(id.to_hex().len(), 64);
        assert_eq!(id.short().len(), 12);
        assert!(id.to_hex().starts_with(&id.short()));
    }
}
