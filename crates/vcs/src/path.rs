//! Normalized repository paths.
//!
//! Paths in the monorepo are `/`-separated, relative to the repository
//! root, with no empty, `.` or `..` components. Normalizing once at the
//! boundary means the tree, the patch machinery and the build system can
//! compare paths with plain string equality.

use crate::error::VcsError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated, normalized repository-relative path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RepoPath(String);

impl RepoPath {
    /// Normalize and validate a path string.
    ///
    /// Accepts optional leading `/` and redundant separators; rejects
    /// empty paths, `.`/`..` components, and trailing slashes that would
    /// make the path a directory.
    pub fn new(s: impl AsRef<str>) -> Result<Self, VcsError> {
        let raw = s.as_ref();
        let mut parts: Vec<&str> = Vec::new();
        for part in raw.split('/') {
            match part {
                "" => continue, // collapse '//' and strip leading '/'
                "." | ".." => return Err(VcsError::InvalidPath(raw.to_string())),
                p => parts.push(p),
            }
        }
        if parts.is_empty() {
            return Err(VcsError::InvalidPath(raw.to_string()));
        }
        if raw.ends_with('/') {
            return Err(VcsError::InvalidPath(raw.to_string()));
        }
        Ok(RepoPath(parts.join("/")))
    }

    /// The normalized string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Path components.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/')
    }

    /// The directory part (everything before the final component), or
    /// `None` for top-level files.
    pub fn parent(&self) -> Option<&str> {
        self.0.rsplit_once('/').map(|(dir, _)| dir)
    }

    /// The final component.
    pub fn file_name(&self) -> &str {
        self.0.rsplit_once('/').map_or(&self.0, |(_, f)| f)
    }

    /// True iff this path is inside directory `dir` (a normalized prefix).
    pub fn starts_with_dir(&self, dir: &str) -> bool {
        let dir = dir.trim_matches('/');
        if dir.is_empty() {
            return true;
        }
        self.0
            .strip_prefix(dir)
            .is_some_and(|rest| rest.starts_with('/'))
    }

    /// Join a child component onto this path.
    pub fn join(&self, child: &str) -> Result<RepoPath, VcsError> {
        RepoPath::new(format!("{}/{}", self.0, child))
    }
}

impl fmt::Display for RepoPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for RepoPath {
    type Err = VcsError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RepoPath::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_leading_and_duplicate_slashes() {
        assert_eq!(RepoPath::new("/a//b/c.rs").unwrap().as_str(), "a/b/c.rs");
        assert_eq!(RepoPath::new("a/b").unwrap().as_str(), "a/b");
    }

    #[test]
    fn rejects_bad_paths() {
        assert!(RepoPath::new("").is_err());
        assert!(RepoPath::new("/").is_err());
        assert!(RepoPath::new("a/../b").is_err());
        assert!(RepoPath::new("./a").is_err());
        assert!(RepoPath::new("a/b/").is_err());
    }

    #[test]
    fn components_and_parts() {
        let p = RepoPath::new("apps/rider/src/main.rs").unwrap();
        assert_eq!(
            p.components().collect::<Vec<_>>(),
            vec!["apps", "rider", "src", "main.rs"]
        );
        assert_eq!(p.parent(), Some("apps/rider/src"));
        assert_eq!(p.file_name(), "main.rs");
        let top = RepoPath::new("README.md").unwrap();
        assert_eq!(top.parent(), None);
        assert_eq!(top.file_name(), "README.md");
    }

    #[test]
    fn starts_with_dir() {
        let p = RepoPath::new("apps/rider/src/main.rs").unwrap();
        assert!(p.starts_with_dir("apps"));
        assert!(p.starts_with_dir("apps/rider"));
        assert!(p.starts_with_dir("/apps/rider/"));
        assert!(p.starts_with_dir(""));
        assert!(!p.starts_with_dir("apps/ride"));
        assert!(!p.starts_with_dir("libs"));
    }

    #[test]
    fn join_builds_children() {
        let p = RepoPath::new("a/b").unwrap();
        assert_eq!(p.join("c.rs").unwrap().as_str(), "a/b/c.rs");
        assert!(p.join("..").is_err());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = RepoPath::new("a/b").unwrap();
        let b = RepoPath::new("a/c").unwrap();
        assert!(a < b);
    }
}
