//! SHA-256, implemented from the FIPS 180-4 specification.
//!
//! Content addressing is the backbone of both the object store and the
//! build system's target hashes (paper Algorithm 1 "converts the message
//! digest to a target hash — a fixed length hash value"). We implement the
//! digest ourselves rather than pulling a crypto dependency: the offline
//! crate set has none, and 32-bit word arithmetic is all that's needed.

/// Streaming SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3, 0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13, 0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208, 0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
];

const H0: [u32; 8] = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A, 0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Fill a partial block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(0x80);
        while self.buf_len != 56 {
            self.update_padding(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        for &b in &len_bytes {
            self.update_padding(b);
        }
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Append a padding byte without counting it in `total_len`.
    fn update_padding(&mut self, byte: u8) {
        self.buf[self.buf_len] = byte;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Render a digest as lowercase hex.
pub fn to_hex(digest: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(digest.len() * 2);
    for &b in digest {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xF) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_empty_vector() {
        assert_eq!(
            to_hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_abc_vector() {
        assert_eq!(
            to_hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_two_block_vector() {
        assert_eq!(
            to_hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_one_shot_at_all_split_points() {
        let data: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
        let expect = Sha256::digest(&data);
        for split in [0usize, 1, 63, 64, 65, 128, 200, 299, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha256::digest(b"hello"), Sha256::digest(b"hellp"));
        assert_ne!(Sha256::digest(b""), Sha256::digest(b"\0"));
    }

    #[test]
    fn to_hex_format() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(to_hex(&[]), "");
    }
}
