//! Error type for repository operations.

use crate::commit::CommitId;
use crate::path::RepoPath;
use std::fmt;

/// Everything that can go wrong when manipulating the repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcsError {
    /// A referenced object id is not in the store.
    MissingObject(String),
    /// A referenced commit does not exist.
    UnknownCommit(CommitId),
    /// A referenced branch does not exist.
    UnknownBranch(String),
    /// A branch with this name already exists.
    BranchExists(String),
    /// A patch operation referenced a path absent from the tree.
    MissingPath(RepoPath),
    /// A path string failed normalization.
    InvalidPath(String),
    /// Applying a patch produced a textual merge conflict.
    MergeConflict {
        /// Paths on which both sides made incompatible edits.
        paths: Vec<RepoPath>,
    },
    /// The commit being created would be empty (patch is a no-op).
    EmptyCommit,
    /// Expected fast-forward but histories diverged.
    NotFastForward {
        /// The branch tip that is not an ancestor.
        tip: CommitId,
    },
}

impl fmt::Display for VcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcsError::MissingObject(id) => write!(f, "object {id} not found in store"),
            VcsError::UnknownCommit(id) => write!(f, "unknown commit {id}"),
            VcsError::UnknownBranch(name) => write!(f, "unknown branch '{name}'"),
            VcsError::BranchExists(name) => write!(f, "branch '{name}' already exists"),
            VcsError::MissingPath(p) => write!(f, "path '{p}' not found in tree"),
            VcsError::InvalidPath(s) => write!(f, "invalid repository path '{s}'"),
            VcsError::MergeConflict { paths } => {
                write!(f, "textual merge conflict on {} path(s): ", paths.len())?;
                for (i, p) in paths.iter().take(5).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            VcsError::EmptyCommit => write!(f, "refusing to create an empty commit"),
            VcsError::NotFastForward { tip } => {
                write!(f, "not a fast-forward: {tip} is not an ancestor")
            }
        }
    }
}

impl std::error::Error for VcsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VcsError::UnknownBranch("feature/x".into());
        assert!(e.to_string().contains("feature/x"));
        let e = VcsError::MergeConflict {
            paths: vec![RepoPath::new("a/b.rs").unwrap()],
        };
        assert!(e.to_string().contains("a/b.rs"));
    }
}
