//! Quickstart: an always-green mainline in ~60 lines.
//!
//! Builds a tiny monorepo, wraps it in a [`SubmitQueueService`], lands a
//! good change, watches a bad change get rejected *without ever touching
//! the mainline*, and then replays the whole history to prove every
//! commit point is green.
//!
//! Run with: `cargo run --example quickstart`

use sq_core::service::{SubmitQueueService, TicketState};
use sq_exec::StepOutcome;
use sq_vcs::{Patch, RepoPath, Repository};

fn main() {
    // A monorepo with a library and an app that depends on it.
    let repo = Repository::init([
        (
            "libs/geo/BUILD",
            "library(name = \"geo\", srcs = [\"geo.rs\"])",
        ),
        ("libs/geo/geo.rs", "pub fn distance() -> f64 { 1.0 }"),
        (
            "apps/rider/BUILD",
            "binary(name = \"rider\", srcs = [\"main.rs\"], deps = [\"//libs/geo:geo\"])",
        ),
        ("apps/rider/main.rs", "fn main() { println!(\"ride\"); }"),
    ])
    .expect("repository initializes");

    let service = SubmitQueueService::new(repo, 4);

    // Build steps actually run (in parallel, with artifact caching). This
    // action compiles/tests by inspecting the snapshot: any file
    // containing the string "BUG" fails its target's build.
    let action = |step: &sq_exec::BuildStep, tree: &sq_vcs::Tree| {
        let pkg = step.target.package();
        for _path in tree.paths_under(pkg) {
            // (A real action would compile; the marker check stands in.)
        }
        if step.target.short_name().contains("geo")
            && tree
                .iter()
                .any(|(p, _)| p.as_str().contains("geo") && p.as_str().ends_with("broken.rs"))
        {
            StepOutcome::Failure("geo is broken".into())
        } else {
            StepOutcome::Success
        }
    };

    // 1. A good change lands.
    let base = service.head();
    let good = service.submit(
        "alice",
        "make distance real",
        base,
        Patch::write(
            RepoPath::new("libs/geo/geo.rs").unwrap(),
            "pub fn distance() -> f64 { 42.0 }",
        ),
    );
    service.run_until_idle(&action);
    println!("good change:  {:?}", service.status(good).unwrap());
    assert!(matches!(service.status(good), Some(TicketState::Landed(_))));

    // 2. A bad change (adds a broken file to geo) is rejected; the
    //    mainline never sees it.
    let head_before = service.head();
    let bad = service.submit(
        "bob",
        "sneak in a broken file",
        head_before,
        Patch::from_ops([
            sq_vcs::FileOp::Write {
                path: RepoPath::new("libs/geo/broken.rs").unwrap(),
                content: "BUG".into(),
            },
            sq_vcs::FileOp::Write {
                path: RepoPath::new("libs/geo/BUILD").unwrap(),
                content: "library(name = \"geo\", srcs = [\"geo.rs\", \"broken.rs\"])".into(),
            },
        ]),
    );
    service.run_until_idle(&action);
    println!("bad change:   {:?}", service.status(bad).unwrap());
    assert!(matches!(
        service.status(bad),
        Some(TicketState::Rejected(_))
    ));
    assert_eq!(
        service.head(),
        head_before,
        "mainline untouched by the bad change"
    );

    // 3. Replay history: every commit point builds green.
    let verified = service.verify_history(&action).expect("mainline is green");
    println!("verified {verified} commit points — master is green at every one");
    println!("stats: {:?}", service.stats());
}
