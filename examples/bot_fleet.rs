//! Bots at scale (paper Section 1): "the emergence of bots that
//! continuously generate code (e.g., Facebook's Configurator) further
//! highlights the need for a highly scalable system that can process
//! thousands of changes per day."
//!
//! A fleet of config bots floods the backend monorepo with small,
//! mostly-independent changes. Because the conflict analyzer proves
//! independence, SubmitQueue commits them in parallel — this example
//! measures how much of the bot traffic each policy sustains.
//!
//! Run with: `cargo run --release --example bot_fleet`

use sq_core::audit::audit_green;
use sq_core::planner::{run_simulation, PlannerConfig};
use sq_core::strategy::{Strategy, StrategyKind};
use sq_workload::{WorkloadBuilder, WorkloadParams};

fn main() {
    // Backend monorepo: wide, shallow build graph; bots touch many
    // distinct config parts, so most changes are independent.
    let mut params = WorkloadParams::backend().with_rate(500.0);
    params.part_zipf_s = 0.5; // bots spread edits nearly uniformly
    params.mean_parts_per_change = 1.1;
    let workload = WorkloadBuilder::new(params)
        .seed(77)
        .duration_hours(2.0)
        .build()
        .expect("valid workload");
    println!(
        "bot fleet: {} generated changes over {:.1}h (≈12k/day pace)\n",
        workload.changes.len(),
        workload.horizon().as_hours_f64()
    );

    let config = PlannerConfig {
        workers: 300,
        ..PlannerConfig::default()
    };
    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>14}",
        "policy", "committed", "P50 (min)", "P95 (min)", "sustained/hour"
    );
    for kind in [
        StrategyKind::Oracle,
        StrategyKind::SingleQueue,
        StrategyKind::Optimistic,
        StrategyKind::SpeculateAll,
    ] {
        let strategy = Strategy::build(kind, &workload, None);
        let r = run_simulation(&workload, &strategy, &config);
        audit_green(&workload, &r).expect("green under bot load");
        let (p50, p95, _) = r.turnaround_p50_p95_p99();
        println!(
            "{:>14} {:>10} {:>12.1} {:>12.1} {:>14.0}",
            kind.name(),
            r.committed(),
            p50,
            p95,
            r.sustained_throughput_per_hour()
        );
    }

    // The analyzer is what makes bot traffic tractable: turn it off and
    // every bot change serializes behind every other.
    let oracle = Strategy::build(StrategyKind::Oracle, &workload, None);
    let without = run_simulation(
        &workload,
        &oracle,
        &PlannerConfig {
            workers: 300,
            conflict_analyzer: false,
            ..PlannerConfig::default()
        },
    );
    let with = run_simulation(&workload, &oracle, &config);
    let (_, p95_with, _) = with.turnaround_p50_p95_p99();
    let (_, p95_without, _) = without.turnaround_p50_p95_p99();
    println!(
        "\nconflict analyzer impact on Oracle P95: {:.0} min → {:.0} min ({:.0}% better)",
        p95_without,
        p95_with,
        (1.0 - p95_with / p95_without) * 100.0
    );
    println!("independent bot changes commit in parallel; the wide graph is where the analyzer shines (Section 8.4)");
}
