//! A guided tour of the speculation engine (paper Section 4, Figures
//! 5–7): how the conflict graph trims the speculation tree, and how
//! probabilities steer which builds get workers.
//!
//! Run with: `cargo run --example speculation_tour`

use sq_core::analyzer::{ConflictAnalyzer, ConflictGraph};
use sq_core::predict::{OraclePredictor, Predictor, SpeculationCounters, UniformPredictor};
use sq_core::speculation::SpeculationEngine;
use sq_workload::{ChangeSpec, WorkloadBuilder, WorkloadParams};
use std::collections::HashMap;

/// A conflict analyzer scripted from an explicit edge list.
struct Edges(Vec<(u64, u64)>);
impl ConflictAnalyzer for Edges {
    fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool {
        let (x, y) = (a.id.0.min(b.id.0), a.id.0.max(b.id.0));
        self.0.contains(&(x, y))
    }
}

fn show<P: Predictor>(
    title: &str,
    w: &sq_workload::Workload,
    edges: &[(u64, u64)],
    predictor: &P,
    budget: usize,
) {
    let mut analyzer = Edges(edges.to_vec());
    let mut graph = ConflictGraph::new();
    let mut pending: Vec<&ChangeSpec> = Vec::new();
    for c in &w.changes {
        graph.admit(c, &pending, &mut analyzer);
        pending.push(c);
    }
    let probs = SpeculationEngine::commit_probabilities(
        w,
        &pending,
        &graph,
        predictor,
        &HashMap::new(),
        &HashMap::new(),
    );
    let builds = SpeculationEngine::select_builds(
        w,
        &pending,
        &graph,
        predictor,
        &HashMap::new(),
        &HashMap::new(),
        budget,
    );
    println!("\n── {title}");
    print!("   P(commit): ");
    for c in &pending {
        print!("C{}={:.2}  ", c.id.0, probs[&c.id]);
    }
    println!(
        "\n   top {} builds by value V = B · P_needed:",
        builds.len()
    );
    for b in &builds {
        println!("     {:<14} V = {:.3}", b.key.to_string(), b.value);
    }
}

fn main() {
    let w = WorkloadBuilder::new(WorkloadParams::ios())
        .seed(4)
        .n_changes(3)
        .build()
        .expect("small workload");

    println!("three pending changes C0, C1, C2 — how speculation adapts\n");
    println!("(compare with paper Figures 5–7; P_needed follows Equations 1–5)");

    show(
        "Figure 5 regime: everything conflicts, 50/50 odds — the full binary tree",
        &w,
        &[(0, 1), (0, 2), (1, 2)],
        &UniformPredictor,
        16,
    );
    show(
        "Figure 6 regime: C0 ⊥ C1, both conflict C2 — C1 commits in parallel",
        &w,
        &[(0, 2), (1, 2)],
        &UniformPredictor,
        16,
    );
    show(
        "Figure 7 regime: C0 conflicts C1 and C2 — seven builds become five",
        &w,
        &[(0, 1), (0, 2)],
        &UniformPredictor,
        16,
    );

    // With an oracle, only the realized path is ever worth building.
    let oracle = OraclePredictor::new(&w);
    show(
        "Oracle odds: only the n needed builds have nonzero value",
        &w,
        &[(0, 1), (0, 2), (1, 2)],
        &oracle,
        16,
    );

    // Dynamic counters shift probabilities mid-flight (Section 7.2).
    println!("\n── dynamic speculation counters (Section 7.2)");
    let c = &w.changes[0];
    let learned_note = |k: SpeculationCounters| {
        // The uniform predictor ignores counters; the learned model uses
        // them — see `examples/train_model.rs` for the trained variant.
        UniformPredictor.p_success(&w, c, k)
    };
    println!(
        "   uniform predictor ignores counters: {} = {}",
        learned_note(SpeculationCounters::default()),
        learned_note(SpeculationCounters {
            succeeded: 5,
            failed: 0
        }),
    );
    println!(
        "   the trained model reacts to them — run `cargo run --release --example train_model`"
    );
}
