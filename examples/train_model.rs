//! Train the Section 7.2 prediction models and poke at them: accuracy on
//! held-out changes, feature importances, and how the dynamic
//! speculation counters move `P_succ` at planning time.
//!
//! Run with: `cargo run --release --example train_model`

use sq_core::predict::{LearnedPredictor, Predictor, SpeculationCounters};
use sq_workload::{WorkloadBuilder, WorkloadParams};

fn main() {
    // "We selected historical changes that went through SubmitQueue
    // along with their final results" — here, a year-scale synthetic
    // history from the same generative process as production traffic.
    let history = WorkloadBuilder::new(WorkloadParams::ios())
        .seed(365)
        .n_changes(12_000)
        .build()
        .expect("valid history");
    println!(
        "training on {} historical changes (70/30 split)…",
        history.changes.len()
    );
    let (predictor, report) = LearnedPredictor::train(&history, 42);

    println!(
        "\nsuccess model:  accuracy {:.1}%  AUC {:.3}   (paper: 97%)",
        report.success_accuracy * 100.0,
        report.success_auc
    );
    println!(
        "conflict model: accuracy {:.1}%",
        report.conflict_accuracy * 100.0
    );
    println!("\nfeatures by |standardized weight| (top 8):");
    for (i, f) in report.success_feature_ranking.iter().take(8).enumerate() {
        println!("  {:>2}. {f}", i + 1);
    }

    // Fresh traffic the model has never seen.
    let fresh = WorkloadBuilder::new(WorkloadParams::ios())
        .seed(366)
        .n_changes(500)
        .build()
        .expect("valid workload");
    let mut correct = 0;
    for c in &fresh.changes {
        let p = predictor.p_success(&fresh, c, SpeculationCounters::default());
        if (p >= 0.5) == c.intrinsic_success {
            correct += 1;
        }
    }
    println!(
        "\nheld-out workload: {}/{} outcomes predicted correctly ({:.1}%)",
        correct,
        fresh.changes.len(),
        100.0 * correct as f64 / fresh.changes.len() as f64
    );

    // Dynamic counters: the strongest signals in production (paper:
    // "number of succeeded speculations" had the highest positive
    // correlation; failed speculations the most negative).
    let c = &fresh.changes[0];
    println!(
        "\ndynamic speculation counters on change {} (P_succ):",
        c.id
    );
    for (ok, fail) in [(0, 0), (2, 0), (5, 0), (0, 2), (0, 5)] {
        let p = predictor.p_success(
            &fresh,
            c,
            SpeculationCounters {
                succeeded: ok,
                failed: fail,
            },
        );
        println!("  {ok} succeeded / {fail} failed → {p:.3}");
    }

    // Pairwise conflict probabilities feed Equation 4.
    let (a, b) = (&fresh.changes[0], &fresh.changes[1]);
    println!(
        "\nP_conf(C0, C1) = {:.3}  (potentially conflicting: {})",
        predictor.p_conflict(&fresh, a, b),
        a.potentially_conflicts(b)
    );
}
