//! The paper's motivating incident (Section 1): "prior to the launch of
//! a new version of our mobile application for riders, hundreds of
//! changes were committed in a matter of minutes after passing tests
//! individually. Collectively though, they resulted in substantial
//! performance regression … Engineers had to spend several hours
//! bisecting the mainline."
//!
//! This example replays a release-crunch burst two ways: trunk-based
//! (the pre-SubmitQueue world — red mainline, blocked release) and
//! through SubmitQueue (always green, faulty changes rejected up front).
//!
//! Run with: `cargo run --release --example mobile_release`

use sq_core::audit::{audit_green, count_red_commits};
use sq_core::planner::{run_simulation, PlannerConfig};
use sq_core::strategy::{Strategy, StrategyKind};
use sq_core::trunk::{simulate_trunk, TrunkConfig};
use sq_workload::{WorkloadBuilder, WorkloadParams};

fn main() {
    // Release crunch: 400 changes/hour against the iOS monorepo for two
    // hours — everyone lands before the branch cut.
    let workload = WorkloadBuilder::new(WorkloadParams::ios().with_rate(400.0))
        .seed(2019)
        .duration_hours(2.0)
        .build()
        .expect("valid workload");
    println!(
        "release crunch: {} changes over {:.1} hours\n",
        workload.changes.len(),
        workload.horizon().as_hours_f64()
    );

    // --- World 1: trunk-based development -------------------------------
    let trunk = simulate_trunk(&workload, &TrunkConfig::default());
    let naive_log: Vec<_> = workload.changes.iter().map(|c| c.id).collect();
    let red_commits = count_red_commits(&workload, &naive_log);
    println!("WITHOUT SubmitQueue (trunk-based):");
    println!(
        "  mainline green only {:.0}% of the crunch",
        trunk.green_fraction * 100.0
    );
    println!(
        "  {} breakage incidents needing bisection + revert",
        trunk.breakages
    );
    println!(
        "  {} of {} commit points are red — the release is blocked until sheriffs finish\n",
        red_commits,
        naive_log.len()
    );

    // --- World 2: SubmitQueue --------------------------------------------
    let history = WorkloadBuilder::new(WorkloadParams::ios())
        .seed(7_000)
        .n_changes(8_000)
        .build()
        .expect("valid history");
    let strategy = Strategy::build(StrategyKind::SubmitQueue, &workload, Some(&history));
    let result = run_simulation(
        &workload,
        &strategy,
        &PlannerConfig {
            workers: 400,
            ..PlannerConfig::default()
        },
    );
    audit_green(&workload, &result).expect("SubmitQueue keeps master green");
    let (p50, p95, _) = result.turnaround_p50_p95_p99();
    println!("WITH SubmitQueue:");
    println!(
        "  {} committed, {} rejected before ever touching the mainline",
        result.committed(),
        result.rejected()
    );
    println!(
        "  mainline green at every one of {} commit points (audited)",
        result.committed()
    );
    println!("  turnaround: P50 {p50:.0} min, P95 {p95:.0} min");
    println!(
        "  {} speculative builds run, {} aborted as speculation resolved",
        result.builds_started, result.builds_aborted
    );
    println!("\nany commit point can ship: the release goes out from HEAD, today.");
}
