//! Vendored shim for `serde_json`: compact JSON serialization and a
//! recursive-descent parser over the shim serde's internal `Value`
//! tree. See `vendor/README.md`.

use serde::__private::Value;
use serde::{de, ser, Deserialize, Serialize};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::__private::to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    render(&tree, &mut out)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(input: &'de str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let tree = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    serde::__private::from_value(tree).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            out.push_str(&x.to_string());
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                            continue;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // the byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error::new("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<f64>("-2.5e2").unwrap(), -250.0);
        assert_eq!(from_str::<String>("\"a\\u0041\"").unwrap(), "aA");
        assert!(from_str::<u64>("true").is_err());
        assert!(from_str::<u64>("1 x").is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let opt: Option<Vec<f64>> = Some(vec![0.25, -1.0]);
        let json = to_string(&opt).unwrap();
        assert_eq!(from_str::<Option<Vec<f64>>>(&json).unwrap(), opt);
        assert_eq!(from_str::<Option<Vec<f64>>>("null").unwrap(), None);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 1e300, -4.9e-300, 309.45796762134535] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x);
        }
        assert!(to_string(&f64::NAN).is_err());
    }
}
