//! Everything a property test usually imports.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng, TestRunner};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
