//! The case runner: deterministic RNG, configuration, and the driver
//! behind the `proptest!` macro.

use crate::strategy::Strategy;
use std::fmt;
use std::path::PathBuf;

/// Deterministic generator (SplitMix64) behind every strategy draw.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n` must be positive).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration (upstream `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Upstream-compatible knob; shrinking is not implemented here.
    pub max_shrink_iters: u32,
    /// Give up after this many rejected cases overall.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's preconditions were not met; it is not counted.
    Reject(String),
    /// The property is false for this input.
    Fail(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A discarded case.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// Result of one case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives a strategy through regression seeds and fresh cases.
pub struct TestRunner {
    config: ProptestConfig,
    source_file: &'static str,
}

impl TestRunner {
    /// Build a runner for the test defined in `source_file` (pass
    /// `file!()`; it locates the `*.proptest-regressions` sidecar).
    pub fn new(config: ProptestConfig, source_file: &'static str) -> TestRunner {
        TestRunner {
            config,
            source_file,
        }
    }

    /// Run the property. Panics (failing the enclosing `#[test]`) with
    /// the generated input on the first failing case.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        // Replay persisted regression seeds first, as upstream does.
        for (i, seed) in regression_seeds(self.source_file).into_iter().enumerate() {
            let mut rng = TestRng::from_seed(seed);
            let value = strategy.new_value(&mut rng);
            let rendered = format!("{value:#?}");
            if let Err(TestCaseError::Fail(msg)) = test(value) {
                panic!(
                    "proptest: regression seed #{i} failed: {msg}\ninput: {rendered}\n\
                     (seed {seed:#018x} from {}.proptest-regressions)",
                    self.source_file.trim_end_matches(".rs")
                );
            }
        }

        let base = fnv1a(self.source_file.as_bytes());
        let mut accepted: u32 = 0;
        let mut rejected: u32 = 0;
        let mut attempt: u64 = 0;
        while accepted < self.config.cases {
            let seed = base ^ attempt.wrapping_mul(0x2545_f491_4f6c_dd1d);
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            let value = strategy.new_value(&mut rng);
            let rendered = format!("{value:#?}");
            match test(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected >= self.config.max_global_rejects {
                        panic!(
                            "proptest: too many global rejects ({rejected}) after \
                             {accepted} accepted cases in {}",
                            self.source_file
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: case #{} failed: {msg}\ninput: {rendered}\n\
                         (seed {seed:#018x}; no shrinking in the vendored shim)",
                        accepted + 1
                    );
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Load `cc <hex>` seed lines from the sidecar regression file, if any.
fn regression_seeds(source_file: &str) -> Vec<u64> {
    let sidecar = PathBuf::from(source_file).with_extension("proptest-regressions");
    let mut candidates = vec![sidecar.clone()];
    if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
        candidates.push(PathBuf::from(manifest_dir).join(&sidecar));
    }
    for path in candidates {
        if let Ok(text) = std::fs::read_to_string(&path) {
            return text
                .lines()
                .filter_map(|line| {
                    let rest = line.trim().strip_prefix("cc ")?;
                    let hex = rest.split_whitespace().next()?;
                    // Fold the (32-byte) persisted seed into our 64-bit
                    // seed space.
                    let mut folded: u64 = 0;
                    let mut nibbles = 0u32;
                    for c in hex.chars() {
                        let d = c.to_digit(16)?;
                        folded = folded.rotate_left(4) ^ u64::from(d);
                        nibbles += 1;
                    }
                    (nibbles > 0).then_some(folded)
                })
                .collect();
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(12345);
        let mut b = TestRng::from_seed(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..100 {
            assert!(a.below(7) < 7);
            let u = a.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn regression_sidecar_seeds_are_loaded_and_replayed() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-probe-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let source = dir.join("probe.rs");
        std::fs::write(
            source.with_extension("proptest-regressions"),
            "# comment line\ncc 1a2b3c4d5e6f7890 # shrinks to input = ...\ncc ff00 # shrinks to ...\n",
        )
        .unwrap();
        let seeds = regression_seeds(source.to_str().unwrap());
        assert_eq!(seeds.len(), 2, "both cc lines parsed");

        // The runner replays each persisted seed before fresh cases: a
        // test body counting invocations sees cases + seeds.
        let source_static: &'static str = Box::leak(source.to_str().unwrap().to_owned().into());
        let calls = std::cell::Cell::new(0u32);
        let mut runner = TestRunner::new(
            ProptestConfig {
                cases: 5,
                ..ProptestConfig::default()
            },
            source_static,
        );
        runner.run(&(0u64..10), |_| {
            calls.set(calls.get() + 1);
            Ok(())
        });
        assert_eq!(calls.get(), 5 + 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runner_counts_only_accepted_cases() {
        let mut runner = TestRunner::new(
            ProptestConfig {
                cases: 50,
                ..ProptestConfig::default()
            },
            "no-such-file.rs",
        );
        let mut seen = 0u32;
        let seen_ref = std::cell::Cell::new(0u32);
        runner.run(&(0u64..100), |v| {
            if v < 50 {
                return Err(TestCaseError::reject("small"));
            }
            seen_ref.set(seen_ref.get() + 1);
            Ok(())
        });
        seen += seen_ref.get();
        assert_eq!(seen, 50);
    }

    #[test]
    #[should_panic(expected = "failed: too big")]
    fn failing_case_panics_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::default(), "no-such-file.rs");
        runner.run(&(0u64..10), |v| {
            if v >= 5 {
                return Err(TestCaseError::fail("too big"));
            }
            Ok(())
        });
    }
}
