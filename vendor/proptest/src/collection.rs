//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(
            self.size.start < self.size.end,
            "empty size range for collection::vec"
        );
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Vectors whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_stay_in_range() {
        let strat = vec(0u8..5, 1..4);
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
