//! Vendored shim for `proptest`: deterministic property testing with the
//! strategy algebra this workspace uses. Differences from upstream: no
//! shrinking (failures panic with the full generated input), and
//! `*.proptest-regressions` seeds are replayed through this shim's own
//! RNG (they remain first-run cases, though the historical values they
//! shrank to are not reconstructible from the seed alone). See
//! `vendor/README.md`.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Assert a condition inside a proptest body, failing the case (not the
/// process) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                    ::std::format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Discard the current case (it does not count toward `cases`) when a
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg_pat:pat in $arg_strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __runner =
                    $crate::test_runner::TestRunner::new(__config, ::std::file!());
                let __strategy = ($($arg_strat,)+);
                __runner.run(&__strategy, |($($arg_pat,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
