//! `any::<T>()`: canonical full-range strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded but sign-symmetric; full bit-pattern floats (NaN,
        // infinities) are rarely what a property wants by default.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}
