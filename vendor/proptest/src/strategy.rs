//! The strategy algebra: how test inputs are generated.

use crate::test_runner::TestRng;
use std::fmt;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply draws a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Weighted choice among type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.new_value(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let x = (3u8..9).new_value(&mut rng);
            assert!((3..9).contains(&x));
            let y = (-5i64..5).new_value(&mut rng);
            assert!((-5..5).contains(&y));
            let z = (-2.0f64..3.0).new_value(&mut rng);
            assert!((-2.0..3.0).contains(&z));
        }
    }

    #[test]
    fn union_honors_weights_roughly() {
        let u = Union::new(vec![
            (9, Strategy::boxed(Just(true))),
            (1, Strategy::boxed(Just(false))),
        ]);
        let mut rng = TestRng::from_seed(42);
        let hits = (0..1000).filter(|_| u.new_value(&mut rng)).count();
        assert!(hits > 800, "expected ~900 true draws, got {hits}");
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = (0u8..4, 0u8..4).prop_map(|(a, b)| format!("{a}{b}"));
        let mut rng = TestRng::from_seed(1);
        let s = strat.new_value(&mut rng);
        assert_eq!(s.len(), 2);
    }
}
