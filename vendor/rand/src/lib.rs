//! Vendored shim for the `rand` crate: just the `RngCore` contract that
//! `sq-sim`'s deterministic generator implements, so all call sites keep
//! the exact upstream trait shape. See `vendor/README.md`.

use std::fmt;

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Wrap a message in an RNG error.
    pub fn new<E: fmt::Display>(err: E) -> Error {
        Error {
            msg: err.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (upstream `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}
