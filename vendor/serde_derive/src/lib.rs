//! Vendored shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for the item shapes this workspace uses — named structs, tuple/newtype
//! structs, unit structs, and enums with unit, tuple, and struct
//! variants. Serde attributes (e.g. `#[serde(transparent)]`) are parsed
//! and ignored; newtype structs already serialize as their inner value.
//!
//! The input item is parsed directly from the token stream (no `syn`),
//! and the generated impls route through `serde::__private::Value`. See
//! `vendor/README.md`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();

    loop {
        match tokens.peek() {
            // Attribute: `#` followed by a bracket group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            // Visibility: `pub` with optional `(crate)` restriction.
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive shim does not support generic type `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unexpected enum body: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Count top-level fields in a tuple-struct/tuple-variant body,
/// treating commas inside `<...>` as part of a type.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut depth = 0i32;
    let mut in_field = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    fields += 1;
                    in_field = true;
                }
            }
        }
    }
    fields
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Skip attributes (including doc comments) and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Consume the type up to a top-level comma.
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        // Skip attributes on the variant.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                tokens.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant`, then the separating comma.
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

const TO: &str = "::serde::__private::to_value";
const FROM: &str = "::serde::__private::from_value";
const VALUE: &str = "::serde::__private::Value";
const SER_ERR: &str = ".map_err(::serde::ser::Error::custom)?";

/// Expression producing the `Value` for one set of fields, given an
/// accessor prefix (`&self.` for structs, `` for bound variant fields).
fn fields_to_value(fields: &Fields, access: &dyn Fn(usize, &str) -> String) -> String {
    match fields {
        Fields::Unit => format!("{VALUE}::Null"),
        Fields::Tuple(1) => format!("{TO}({}){SER_ERR}", access(0, "")),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("{TO}({}){SER_ERR}", access(i, "")))
                .collect();
            format!("{VALUE}::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .enumerate()
                .map(|(i, f)| format!("({:?}.to_string(), {TO}({}){SER_ERR})", f, access(i, f)))
                .collect();
            format!("{VALUE}::Map(::std::vec![{}])", entries.join(", "))
        }
    }
}

/// Expression (re)constructing `ctor` from a `Value` bound to `payload`,
/// inside a closure returning `Result<_, ValueError>`.
fn fields_from_value(ctor: &str, fields: &Fields, payload: &str) -> String {
    match fields {
        Fields::Unit => format!(
            "match {payload} {{ {VALUE}::Null | {VALUE}::Seq(_) | {VALUE}::Map(_) => \
             ::std::result::Result::Ok({ctor}), other => ::std::result::Result::Err(\
             ::serde::__private::ValueError(::std::format!(\
             \"invalid value for {ctor}: {{}}\", other.kind()))) }}"
        ),
        Fields::Tuple(1) => format!("::std::result::Result::Ok({ctor}({FROM}({payload})?))"),
        Fields::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|_| format!("{FROM}(__seq.next().unwrap())?"))
                .collect();
            format!(
                "{{ let mut __seq = ::serde::__private::expect_seq({payload}, {:?}, {n})?\
                 .into_iter(); ::std::result::Result::Ok({ctor}({})) }}",
                ctor,
                gets.join(", ")
            )
        }
        Fields::Named(names) => {
            let gets: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::__private::take_field(&mut __map, {:?}, {:?})?",
                        ctor, f
                    )
                })
                .collect();
            format!(
                "{{ let mut __map = ::serde::__private::expect_map({payload}, {:?})?; \
                 ::std::result::Result::Ok({ctor} {{ {} }}) }}",
                ctor,
                gets.join(", ")
            )
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let (name, value_expr) = match item {
        Item::Struct { name, fields } => {
            let expr = fields_to_value(fields, &|i, f| {
                if f.is_empty() {
                    format!("&self.{i}")
                } else {
                    format!("&self.{f}")
                }
            });
            (name.clone(), expr)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vname} => {VALUE}::Str({:?}.to_string()),", vname)
                        }
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let inner = fields_to_value(&v.fields, &|i, _| format!("__f{i}"));
                            format!(
                                "{name}::{vname}({}) => {VALUE}::Map(::std::vec![\
                                 ({:?}.to_string(), {inner})]),",
                                binds.join(", "),
                                vname
                            )
                        }
                        Fields::Named(fields) => {
                            let inner = fields_to_value(&v.fields, &|_, f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {} }} => {VALUE}::Map(::std::vec![\
                                 ({:?}.to_string(), {inner})]),",
                                fields.join(", "),
                                vname
                            )
                        }
                    }
                })
                .collect();
            (name.clone(), format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::std::result::Result<S::Ok, S::Error> {{\n\
                 let __value: {VALUE} = {value_expr};\n\
                 serializer.serialize_value(__value)\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name.clone(), fields_from_value(name, fields, "__value")),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let ctor = format!("{name}::{}", v.name);
                    format!(
                        "{:?} => {},",
                        v.name,
                        fields_from_value(&ctor, &v.fields, "__payload")
                    )
                })
                .collect();
            let body = format!(
                "match __value {{\n\
                     {VALUE}::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::__private::ValueError(\n\
                             ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     {VALUE}::Map(mut __m) if __m.len() == 1 => {{\n\
                         let (__k, __payload) = __m.pop().unwrap();\n\
                         match __k.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::__private::ValueError(\n\
                                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::__private::ValueError(\n\
                         ::std::format!(\"invalid value for enum {name}: {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n"),
            );
            (name.clone(), body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::std::result::Result<Self, D::Error> {{\n\
                 let __value = deserializer.deserialize_value()?;\n\
                 let __result: ::std::result::Result<Self, ::serde::__private::ValueError> =\n\
                     (move || {{ {body} }})();\n\
                 __result.map_err(::serde::de::Error::custom)\n\
             }}\n\
         }}\n"
    )
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .unwrap_or_else(|e| error(&format!("derive shim produced invalid code: {e}"))),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
