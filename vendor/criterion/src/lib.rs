//! Offline stand-in for the `criterion` benchmarking harness.
//!
//! Implements the API subset this workspace's benches use. Instead of
//! statistical sampling it runs each benchmark body a small fixed
//! number of times and reports the mean wall-clock duration — enough
//! for the benches to compile, run under `cargo bench`, and produce
//! comparable relative numbers, without the upstream dependency tree.

use std::fmt;
use std::time::{Duration, Instant};

/// Iterations per measurement (upstream samples adaptively).
const DEFAULT_ITERS: u32 = 10;

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, e.g. `hash/200`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Just the parameter, e.g. `200`.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: DEFAULT_ITERS,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Criterion {
        run_one(&id.to_string(), DEFAULT_ITERS, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes statistical sample count; here it scales the
    /// fixed iteration count down for expensive bodies.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u32).clamp(1, DEFAULT_ITERS);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.iters, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (upstream emits summary statistics here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u32, mut f: F) {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters > 0 && bencher.elapsed > Duration::ZERO {
        let mean = bencher.elapsed / bencher.iters;
        println!(
            "bench: {label:<60} {mean:>12.2?}/iter ({} iters)",
            bencher.iters
        );
    } else {
        println!("bench: {label:<60} (no measurement)");
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate the `main` entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_apis_run_bodies() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("standalone", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);

        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        let mut with_input_runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, n| {
            b.iter(|| with_input_runs += *n as u32)
        });
        group.finish();
        assert!(with_input_runs >= 7);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("hash", 200).to_string(), "hash/200");
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
    }
}
