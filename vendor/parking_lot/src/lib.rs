//! Vendored shim for `parking_lot`: the `Mutex`/`RwLock` surface used by
//! this workspace, backed by `std::sync` primitives with parking_lot's
//! panic-free, poison-ignoring `lock()` signature. See `vendor/README.md`.

use std::fmt;

/// A mutex whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A readers-writer lock with parking_lot's panic-free signatures.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
