//! Vendored shim for `crossbeam`: scoped threads with crossbeam's
//! closure-takes-a-scope-handle signature, implemented over
//! `std::thread::scope`. See `vendor/README.md`.

pub mod thread {
    use std::panic::AssertUnwindSafe;

    /// A scope for spawning borrowing threads (upstream
    /// `crossbeam::thread::Scope`). Copyable so spawned closures can
    /// receive their own handle and spawn nested work.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope handle, matching crossbeam's `|scope| ...` shape.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: handle.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Create a scope in which threads may borrow from the enclosing
    /// stack frame. All spawned threads are joined before this returns;
    /// a panic on any unjoined thread (or in the closure itself) is
    /// reported as `Err` with the panic payload, as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = crate::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    scope.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 2
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(out, 2 + 4 + 6);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = crate::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
