//! Vendored shim for `serde`: the trait surface this workspace uses
//! (`Serialize`, `Deserialize`, `Serializer`, `Deserializer`,
//! `de::Error::custom`, and the derive macros), routed through an
//! internal JSON-shaped [`__private::Value`] tree rather than the full
//! visitor machinery. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

#[doc(hidden)]
pub mod __private;

use __private::Value;

/// A value that can be serialized through any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that values serialize into.
///
/// In this shim every format consumes a fully built [`Value`] tree via
/// [`Serializer::serialize_value`]; the `serialize_*` convenience
/// methods used by hand-written impls are provided on top of it.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error produced by the format.
    type Error: ser::Error;

    /// Consume a complete value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_owned()))
    }

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::I64(v))
    }

    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::U64(v))
    }

    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::F64(v))
    }

    /// Serialize a unit/null value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A value that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize an instance of `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data format that values deserialize out of.
///
/// In this shim every format yields a complete [`Value`] tree via
/// [`Deserializer::deserialize_value`].
pub trait Deserializer<'de>: Sized {
    /// Error produced by the format.
    type Error: de::Error;

    /// Produce the complete value tree.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// Serialization-side error support.
pub mod ser {
    /// Trait every serializer error implements.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Build an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error support.
pub mod de {
    /// Trait every deserializer error implements.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Build an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;

        /// A field expected by the type was absent.
        fn missing_field(field: &'static str) -> Self {
            Self::custom(format!("missing field `{field}`"))
        }
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_value()
    }
}

macro_rules! serialize_int {
    ($($t:ty => $via:ident as $big:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$via(*self as $big)
            }
        }
    )*};
}

serialize_int! {
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a, E: ser::Error>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Value, E> {
    let mut seq = Vec::new();
    for item in items {
        seq.push(__private::to_value(item).map_err(ser::Error::custom)?);
    }
    Ok(Value::Seq(seq))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S::Error>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S::Error>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S::Error>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let a = __private::to_value(&self.0).map_err(ser::Error::custom)?;
        let b = __private::to_value(&self.1).map_err(ser::Error::custom)?;
        serializer.serialize_value(Value::Seq(vec![a, b]))
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = match __private::to_value(k).map_err(ser::Error::custom)? {
                Value::Str(s) => s,
                other => {
                    return Err(ser::Error::custom(format!(
                        "map key must serialize as a string, got {}",
                        other.kind()
                    )))
                }
            };
            map.push((key, __private::to_value(v).map_err(ser::Error::custom)?));
        }
        serializer.serialize_value(Value::Map(map))
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

macro_rules! deserialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.deserialize_value()?;
                let n: Result<$t, String> = match v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| format!("integer {n} out of range for {}", stringify!($t))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| format!("integer {n} out of range for {}", stringify!($t))),
                    other => Err(format!(
                        "invalid type: expected {}, got {}",
                        stringify!($t),
                        other.kind()
                    )),
                };
                n.map_err(de::Error::custom)
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(de::Error::custom(format!(
                "invalid type: expected f64, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!(
                "invalid type: expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "invalid type: expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected a single character")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Null => Ok(None),
            v => __private::from_value(v)
                .map(Some)
                .map_err(de::Error::custom),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| __private::from_value(v).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!(
                "invalid type: expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::custom(format!("expected an array of length {N}, got {len}")))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = __private::from_value(it.next().unwrap()).map_err(de::Error::custom)?;
                let b = __private::from_value(it.next().unwrap()).map_err(de::Error::custom)?;
                Ok((a, b))
            }
            other => Err(de::Error::custom(format!(
                "invalid type: expected a 2-element sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = __private::from_value(Value::Str(k)).map_err(de::Error::custom)?;
                    let value = __private::from_value(v).map_err(de::Error::custom)?;
                    Ok((key, value))
                })
                .collect(),
            other => Err(de::Error::custom(format!(
                "invalid type: expected map, got {}",
                other.kind()
            ))),
        }
    }
}
