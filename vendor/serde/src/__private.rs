//! Internal value tree and helpers shared by the derive macro and data
//! formats. Not part of the public API contract.

use crate::{de, ser, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// A JSON-shaped dynamic value: the interchange representation every
/// serializer/deserializer in this shim speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// String-keyed map in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced while converting to or from a [`Value`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serializer that materializes the [`Value`] tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer that replays a [`Value`] tree.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Serialize anything into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserialize anything out of a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

/// Pull a named field out of a struct map, treating a missing key as
/// null (so `Option` fields default to `None`, as with real serde).
pub fn take_field<'de, T: Deserialize<'de>>(
    map: &mut Vec<(String, Value)>,
    type_name: &str,
    field: &str,
) -> Result<T, ValueError> {
    let value = match map.iter().position(|(k, _)| k == field) {
        Some(i) => map.swap_remove(i).1,
        None => Value::Null,
    };
    from_value(value).map_err(|e| ValueError(format!("{type_name}.{field}: {e}")))
}

/// Expect a map (struct body), or fail with the type's name.
pub fn expect_map(value: Value, type_name: &str) -> Result<Vec<(String, Value)>, ValueError> {
    match value {
        Value::Map(m) => Ok(m),
        other => Err(ValueError(format!(
            "invalid type: expected map for {type_name}, got {}",
            other.kind()
        ))),
    }
}

/// Expect a sequence of exactly `len` elements (tuple struct body).
pub fn expect_seq(value: Value, type_name: &str, len: usize) -> Result<Vec<Value>, ValueError> {
    match value {
        Value::Seq(s) if s.len() == len => Ok(s),
        Value::Seq(s) => Err(ValueError(format!(
            "invalid length: expected {len} elements for {type_name}, got {}",
            s.len()
        ))),
        other => Err(ValueError(format!(
            "invalid type: expected sequence for {type_name}, got {}",
            other.kind()
        ))),
    }
}
