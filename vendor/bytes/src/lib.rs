//! Vendored shim for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer. See `vendor/README.md`.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: bytes.into() }
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        iter.into_iter().collect::<Vec<u8>>().into()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let s = Bytes::from("hi");
        assert_eq!(s.as_ref(), b"hi");
        assert!(!s.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
