#!/usr/bin/env bash
# Tier-1 gate plus lint checks. Run from the repository root.
#
#   scripts/check.sh          # everything
#
# The build is fully offline: all external dependencies resolve to the
# API-compatible stand-ins under vendor/ (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (root package: integration + property suites)"
cargo test -q

echo "==> cargo test -q --test chaos_recovery (fault injection: green mainline, no wrongful rejections, reproducible histories)"
cargo test -q --test chaos_recovery

echo "==> cargo test --workspace -q (every crate, including vendor shims)"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings (vendor stand-ins excluded)"
cargo clippy --workspace --all-targets \
  --exclude bytes --exclude criterion --exclude crossbeam --exclude parking_lot \
  --exclude proptest --exclude rand --exclude serde --exclude serde_derive \
  --exclude serde_json \
  -- -D warnings

echo "==> bench_e2e --smoke (machine-readable benchmark: emit + validate JSON)"
cargo run --release -p sq-bench --bin bench_e2e -- --smoke

echo "==> bench_recovery --smoke (durable store: replay throughput + byte-identical recovery)"
cargo run --release -p sq-bench --bin bench_recovery -- --smoke

echo "All checks passed."
