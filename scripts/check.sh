#!/usr/bin/env bash
# Tier-1 gate plus lint checks. Run from the repository root.
#
#   scripts/check.sh          # everything (what CI runs)
#   scripts/check.sh --quick  # release build + root-package tests only
#
# The build is fully offline: all external dependencies resolve to the
# API-compatible stand-ins under vendor/ (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
case "${1:-}" in
  --quick) quick=1 ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--quick]" >&2; exit 2 ;;
esac

echo "==> cargo build --release"
cargo build --release

if [[ "$quick" == 1 ]]; then
  echo "==> cargo test -q (root package: integration + property suites)"
  cargo test -q
  echo "Quick checks passed."
  exit 0
fi

# The workspace run already covers the root package (unit, integration
# including chaos_recovery, property and doc tests) — running
# `cargo test -q` first would execute all of those twice.
echo "==> cargo test --workspace -q (every crate, including vendor shims)"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings (vendor stand-ins excluded)"
cargo clippy --workspace --all-targets \
  --exclude bytes --exclude criterion --exclude crossbeam --exclude parking_lot \
  --exclude proptest --exclude rand --exclude serde --exclude serde_derive \
  --exclude serde_json \
  -- -D warnings

echo "==> bench_e2e --smoke (machine-readable benchmark: emit + validate JSON)"
cargo run --release -p sq-bench --bin bench_e2e -- --smoke

echo "==> bench_recovery --smoke (durable store: replay throughput + byte-identical recovery)"
cargo run --release -p sq-bench --bin bench_recovery -- --smoke

echo "==> bench_conflict --smoke (perf gate: indexed+parallel <= serial, byte-identical matrices)"
cargo run --release -p sq-bench --bin bench_conflict -- --smoke

echo "==> bench_scenarios --smoke (adversarial matrix: always-green, no wrongful rejections, byte-identical rerun)"
cargo run --release -p sq-bench --bin bench_scenarios -- --smoke

echo "==> bench_replication --smoke (zero-loss gate: seeded failover, byte-identical state vs uncrashed twin)"
cargo run --release -p sq-bench --bin bench_replication -- --smoke

echo "==> bench_server --smoke (serving layer: zero lost acks across graceful drain/restart, byte-identical rerun)"
cargo run --release -p sq-bench --bin bench_server -- --smoke

echo "==> bench_shard --smoke (sharded planner: always-green, zero wrongful per lane, sharded >= single-queue, byte-identical rerun)"
cargo run --release -p sq-bench --bin bench_shard -- --smoke

echo "All checks passed."
