#!/usr/bin/env bash
# Tier-1 gate plus lint checks. Run from the repository root.
#
#   scripts/check.sh          # everything (what CI runs)
#   scripts/check.sh --quick  # release build + root-package tests only
#
# Every step reports its elapsed seconds, and a summary sorted by cost
# prints at the end so the slowest gate is always the first line.
#
# The build is fully offline: all external dependencies resolve to the
# API-compatible stand-ins under vendor/ (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
case "${1:-}" in
  --quick) quick=1 ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--quick]" >&2; exit 2 ;;
esac

timings=""

step() { # step <label> <command...>
  local label="$1"
  shift
  echo "==> $label"
  local start elapsed
  start=$SECONDS
  "$@"
  elapsed=$((SECONDS - start))
  echo "    (${elapsed}s) $label"
  timings+="${elapsed}	${label}
"
}

summary() {
  echo
  echo "Step timings (slowest first):"
  printf '%s' "$timings" | sort -rn | awk -F'\t' '{ printf "  %5ss  %s\n", $1, $2 }'
}

step "cargo build --release" \
  cargo build --release

if [[ "$quick" == 1 ]]; then
  step "cargo test -q (root package: integration + property suites)" \
    cargo test -q
  summary
  echo "Quick checks passed."
  exit 0
fi

# The workspace run already covers the root package (unit, integration
# including chaos_recovery, property and doc tests) — running
# `cargo test -q` first would execute all of those twice.
step "cargo test --workspace -q (every crate, including vendor shims)" \
  cargo test --workspace -q

step "cargo fmt --check" \
  cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings (vendor stand-ins excluded)" \
  cargo clippy --workspace --all-targets \
    --exclude bytes --exclude criterion --exclude crossbeam --exclude parking_lot \
    --exclude proptest --exclude rand --exclude serde --exclude serde_derive \
    --exclude serde_json \
    -- -D warnings

smoke() { # smoke <bin> <description>
  step "$1 --smoke ($2)" \
    cargo run --release -p sq-bench --bin "$1" -- --smoke
}

smoke bench_e2e "machine-readable benchmark: emit + validate JSON"
smoke bench_recovery "durable store: replay throughput + byte-identical recovery"
smoke bench_conflict "perf gate: indexed+parallel <= serial, byte-identical matrices"
smoke bench_scenarios "adversarial matrix: always-green, no wrongful rejections, byte-identical rerun"
smoke bench_replication "zero-loss gate: seeded failover, byte-identical state vs uncrashed twin"
smoke bench_server "serving layer: zero lost acks across graceful drain/restart, byte-identical rerun"
smoke bench_shard "sharded planner: always-green, zero wrongful per lane, sharded >= single-queue, byte-identical rerun"
smoke bench_lean "lean ablation: every cell green, zero wrongful rejections, all-on wastes less than baseline, byte-identical rerun"

summary
echo "All checks passed."
