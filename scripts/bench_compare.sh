#!/usr/bin/env bash
# Benchmark regression gate. Regenerates the deterministic benchmark
# documents and compares them field-by-field against the committed
# copies at the repository root:
#
#   - sustained_throughput_per_hour may not regress by more than
#     SQ_BENCH_TOLERANCE_PCT percent (default 5) in any occurrence;
#   - wasted builds may not increase at all, anywhere.
#
# Occurrences are compared positionally, which matches cells one-to-one
# because both documents carry the same schema and the ablation cell
# order is validated by the emitting binary. On this repository's
# simulated clock the documents are byte-reproducible, so the tolerance
# only matters once real-machine noise enters a document; the wasted
# gate is exact on purpose — waste is the lean headline number.
#
#   scripts/bench_compare.sh            # regenerate + compare e2e, lean
#   SQ_BENCH_TOLERANCE_PCT=2 scripts/bench_compare.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tolerance="${SQ_BENCH_TOLERANCE_PCT:-5}"
failures=0

extract() { # extract <file> <json-key> -> one value per line, in order
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | cut -d: -f2
}

compare_doc() { # compare_doc <committed> <fresh>
  local committed="$1" fresh="$2"
  if [[ ! -f "$committed" ]]; then
    echo "MISSING committed document $committed" >&2
    failures=$((failures + 1))
    return
  fi
  # Throughput: every occurrence must stay within tolerance of committed.
  paste -d' ' <(extract "$committed" sustained_throughput_per_hour) \
              <(extract "$fresh" sustained_throughput_per_hour) |
    awk -v tol="$tolerance" -v doc="$committed" '
      { floor = $1 * (1 - tol / 100)
        if ($2 < floor) {
          printf "REGRESSION %s cell %d: sustained %.3f < %.3f (committed %.3f - %s%%)\n",
                 doc, NR, $2, floor, $1, tol
          bad = 1
        } else {
          printf "ok %s cell %d: sustained %.3f vs committed %.3f\n", doc, NR, $2, $1
        }
      }
      END { exit bad }' || failures=$((failures + 1))
  # Waste: any increase in any occurrence fails.
  paste -d' ' <(extract "$committed" wasted) <(extract "$fresh" wasted) |
    awk -v doc="$committed" '
      { if ($2 > $1) {
          printf "REGRESSION %s cell %d: wasted %d > committed %d\n", doc, NR, $2, $1
          bad = 1
        } else {
          printf "ok %s cell %d: wasted %d vs committed %d\n", doc, NR, $2, $1
        }
      }
      END { exit bad }' || failures=$((failures + 1))
}

echo "==> regenerating benchmark documents"
cargo run --release -p sq-bench --bin bench_e2e >/dev/null
cargo run --release -p sq-bench --bin bench_lean >/dev/null

echo "==> comparing against committed documents (tolerance ${tolerance}%)"
compare_doc BENCH_e2e.json results/BENCH_e2e.json
compare_doc BENCH_lean.json results/BENCH_lean.json

if [[ "$failures" -gt 0 ]]; then
  echo "benchmark regression gate FAILED ($failures check(s))" >&2
  exit 1
fi
echo "benchmark regression gate passed."
